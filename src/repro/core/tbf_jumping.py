"""TBF over jumping windows with many sub-windows (§4.1 extension).

When a jumping window has a large number of sub-windows ``Q``, the GBF
needs ``ceil((Q+1)/D)`` words per hashed slot and becomes slow; §4.1
notes that the TBF handles this regime naturally: give every element of
the same sub-window the *same* timestamp (the sub-window index), so all
of a sub-window's elements expire from the filter simultaneously —
jumping-window semantics with sliding-window machinery.

Timestamps are measured in sub-window units, so entries need only
``ceil(log2(Q + C + 2))`` bits and the cleaning cursor has
``(C + 1) * N/Q`` arrivals to cover the filter.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..bitset.words import OperationCounter
from ..bloom.params import false_positive_rate_from_fill
from ..errors import ConfigurationError
from ..hashing import HashFamily, SplitMixFamily
from . import kernels
from .batch import check_reads, resolve_inserts
from .tbf import _dtype_for_bits


class TBFJumpingDetector:
    """One-pass duplicate detector over a count-based jumping window.

    Parameters mirror :class:`~repro.core.gbf.GBFDetector` where they
    overlap; ``cleanup_slack`` is in *sub-window* units and defaults to
    ``Q - 1``.
    """

    def __init__(
        self,
        window_size: int,
        num_subwindows: int,
        num_entries: int,
        num_hashes: int = 4,
        cleanup_slack: Optional[int] = None,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
        if num_subwindows < 1:
            raise ConfigurationError(
                f"num_subwindows must be >= 1, got {num_subwindows}"
            )
        if window_size % num_subwindows != 0:
            raise ConfigurationError(
                f"window_size {window_size} not divisible by Q={num_subwindows}"
            )
        if num_entries < 1:
            raise ConfigurationError(f"num_entries must be >= 1, got {num_entries}")
        if cleanup_slack is None:
            cleanup_slack = num_subwindows - 1
        if cleanup_slack < 0:
            raise ConfigurationError(
                f"cleanup_slack must be >= 0, got {cleanup_slack}"
            )
        if family is None:
            family = SplitMixFamily(num_hashes, num_entries, seed)
        if family.num_buckets != num_entries:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != num_entries {num_entries}"
            )

        self.window_size = window_size
        self.num_subwindows = num_subwindows
        self.subwindow_size = window_size // num_subwindows
        self.num_entries = num_entries
        self.cleanup_slack = cleanup_slack
        self.family = family

        self.timestamp_period = num_subwindows + cleanup_slack + 1
        self.entry_bits = max(1, math.ceil(math.log2(self.timestamp_period + 1)))
        self.empty_value = (1 << self.entry_bits) - 1
        self._entries = np.full(
            num_entries, self.empty_value, dtype=_dtype_for_bits(self.entry_bits)
        )
        # Cursor must lap the filter within (C+1) sub-windows of arrivals.
        arrivals_per_lap = (cleanup_slack + 1) * self.subwindow_size
        self._scan_per_element = -(-num_entries // arrivals_per_lap)
        self._clean_cursor = 0
        self._position = -1

        self.counter = OperationCounter()
        #: Duplicate verdicts issued so far (telemetry; kept off the
        #: :class:`OperationCounter` to preserve its equality semantics).
        self.duplicates = 0

    def _clean_step(self, now: int) -> None:
        entries = self._entries
        m = self.num_entries
        period = self.timestamp_period
        active_span = self.num_subwindows
        empty = self.empty_value
        cursor = self._clean_cursor
        reads = 0
        writes = 0
        for _ in range(self._scan_per_element):
            value = int(entries[cursor])
            reads += 1
            if value != empty and (now - value) % period >= active_span:
                entries[cursor] = empty
                writes += 1
            cursor += 1
            if cursor == m:
                cursor = 0
        self._clean_cursor = cursor
        self.counter.word_reads += reads
        self.counter.word_writes += writes

    def process(self, identifier: int) -> bool:
        """Observe the next click; True means duplicate (not recorded)."""
        self.counter.hash_evaluations += self.family.num_hashes
        return self.process_indices(self.family.indices(identifier))

    def process_indices(self, indices: Sequence[int]) -> bool:
        self._position += 1
        now = (self._position // self.subwindow_size) % self.timestamp_period
        self._clean_step(now)

        entries = self._entries
        period = self.timestamp_period
        active_span = self.num_subwindows
        empty = self.empty_value

        duplicate = True
        reads = 0
        for index in indices:
            value = int(entries[index])
            reads += 1
            if value == empty or (now - value) % period >= active_span:
                duplicate = False
                break
        self.counter.word_reads += reads
        self.counter.elements += 1
        if duplicate:
            self.duplicates += 1
            return True
        stamp = entries.dtype.type(now)
        for index in indices:
            entries[index] = stamp
        self.counter.word_writes += len(indices)
        return False

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------

    #: Upper bound on one vectorized segment (bounds temp-array memory).
    _MAX_SEGMENT = 1 << 16

    def process_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        """Observe a batch of clicks; bit-identical to a scalar loop."""
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        self.counter.hash_evaluations += self.family.num_hashes * int(
            identifiers.shape[0]
        )
        return self.process_indices_batch(self.family.indices_batch(identifiers))

    def process_indices_batch(self, indices: "np.ndarray") -> "np.ndarray":
        """Batch variant of :meth:`process_indices`.

        Segments end at sub-window boundaries (the timestamp ``now`` is
        constant inside a sub-window) and after ``m // scan`` arrivals
        (so the cleaning cursor visits each entry at most once).
        """
        idx = np.asarray(indices)
        if idx.ndim != 2:
            raise ValueError(f"indices must be (n, k), got {idx.ndim}-D")
        n = idx.shape[0]
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        idx = idx.astype(np.int64, copy=False)
        sub = self.subwindow_size
        cursor_limit = max(1, self.num_entries // self._scan_per_element)
        start = 0
        while start < n:
            first_pos = self._position + 1
            into_sub = first_pos % sub
            seg = min(
                n - start,
                sub - into_sub if into_sub else sub,
                cursor_limit,
                self._MAX_SEGMENT,
            )
            self._process_segment(idx[start : start + seg], out[start : start + seg])
            start += seg
        return out

    def _process_segment(self, idx: "np.ndarray", out: "np.ndarray") -> None:
        n, k = idx.shape
        entries = self._entries
        m = self.num_entries
        period = self.timestamp_period
        active_span = self.num_subwindows
        empty = self.empty_value
        scan = self._scan_per_element
        first_position = self._position + 1
        now = (first_position // self.subwindow_size) % period

        values = entries[idx].astype(np.int64)
        ages = kernels.wrapped_ages(now, values, period)
        active0 = (values != empty) & (ages < active_span)
        dup0 = kernels.row_all(active0)
        duplicate, inserters, first_writer, covered = resolve_inserts(
            dup0, active0, idx, m
        )
        reads = check_reads(covered)
        ins = np.nonzero(inserters)[0]

        # Cursor sweep over at most two contiguous slices (n * scan <= m
        # by the segment limit): sliced views replace index arrays, and
        # the interleaved per-slice erase is exact because slices are
        # disjoint in entry space.
        total = n * scan
        sweep_element = kernels.repeat_arange(n, scan) if ins.size else None
        cursor = self._clean_cursor
        offset = 0
        clean_writes = 0
        empty_stamp = entries.dtype.type(empty)
        while offset < total:
            length = min(total - offset, m - cursor)
            seg = entries[cursor : cursor + length]
            seg_values = seg.astype(np.int64)
            erase = (seg_values != empty) & (
                kernels.wrapped_ages(now, seg_values, period) >= active_span
            )
            if ins.size:
                erase &= ~(
                    first_writer[cursor : cursor + length]
                    < sweep_element[offset : offset + length]
                )
            count = int(np.count_nonzero(erase))
            if count:
                seg[erase] = empty_stamp
                clean_writes += count
            cursor = (cursor + length) % m
            offset += length
        if ins.size:
            # Every in-segment insert stamps the same value, so the
            # duplicate-index assignment order cannot matter.
            flat = idx.ravel() if ins.size == n else idx[ins].ravel()
            entries[flat] = entries.dtype.type(now)

        self._clean_cursor = int((self._clean_cursor + n * scan) % m)
        self._position += n
        self.counter.add(n * scan + reads, clean_writes + k * int(ins.size))
        self.counter.elements += n
        self.duplicates += int(np.count_nonzero(duplicate))
        out[:] = duplicate

    def query(self, identifier: int) -> bool:
        return self.query_indices(self.family.indices(identifier))

    def query_indices(self, indices: Sequence[int]) -> bool:
        if self._position < 0:
            return False
        entries = self._entries
        now = (self._position // self.subwindow_size) % self.timestamp_period
        period = self.timestamp_period
        empty = self.empty_value
        for index in indices:
            value = int(entries[index])
            if value == empty or (now - value) % period >= self.num_subwindows:
                return False
        return True

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    @property
    def position(self) -> int:
        return self._position

    @property
    def scan_per_element(self) -> int:
        return self._scan_per_element

    @property
    def memory_bits(self) -> int:
        return self.num_entries * self.entry_bits

    def active_entries(self) -> int:
        """Number of entries currently holding an active timestamp."""
        if self._position < 0:
            return 0
        now = (self._position // self.subwindow_size) % self.timestamp_period
        values = self._entries.astype(np.int64)
        ages = (now - values) % self.timestamp_period
        return int(
            ((values != self.empty_value) & (ages < self.num_subwindows)).sum()
        )

    def stale_entries(self) -> int:
        """Entries holding an expired timestamp not yet swept (diagnostic)."""
        if self._position < 0:
            return 0
        now = (self._position // self.subwindow_size) % self.timestamp_period
        values = self._entries.astype(np.int64)
        ages = (now - values) % self.timestamp_period
        return int(
            ((values != self.empty_value) & (ages >= self.num_subwindows)).sum()
        )

    @property
    def observed_duplicate_rate(self) -> float:
        """Fraction of processed clicks flagged duplicate so far."""
        return self.duplicates / self.counter.elements if self.counter.elements else 0.0

    def estimated_fp_rate(self) -> float:
        """Live FP estimate ``(active / m) ** k`` from the measured fill."""
        return false_positive_rate_from_fill(
            self.active_entries() / self.num_entries, self.num_hashes
        )

    def spec(self):
        """The :class:`~repro.detection.DetectorSpec` rebuilding this detector.

        Exact round trip — ``create_detector(detector.spec())`` yields
        an identically configured detector.  Requires the default
        SplitMixFamily (a custom family cannot ride a spec).
        """
        from ..detection.detector import DetectorSpec, TBFParams, WindowSpec

        if type(self.family) is not SplitMixFamily:
            raise ConfigurationError(
                "spec() requires the default SplitMixFamily; this detector "
                f"uses {type(self.family).__name__}"
            )
        return DetectorSpec(
            algorithm="tbf-jumping",
            window=WindowSpec("jumping", self.window_size, self.num_subwindows),
            params=TBFParams(self.num_entries, self.num_hashes, self.cleanup_slack),
            seed=self.family.seed,
        )

    def checkpoint_state(self) -> bytes:
        """Serialized sketch state (invert with :func:`repro.core.load_detector`).

        Part of the unified :class:`~repro.detection.api.Detector` /
        :class:`~repro.detection.api.TimedDetector` protocol; delegates
        to the checkpoint registry (:func:`repro.core.save_detector`).
        """
        from .checkpoint import save_detector

        return save_detector(self)

    def telemetry_snapshot(self) -> dict:
        """Health metrics for :mod:`repro.telemetry.instruments`."""
        counter = self.counter
        # One sweep of the entry array feeds active count, stale count,
        # fill, and the FP estimate (same floats as estimated_fp_rate()).
        if self._position < 0:
            active = stale = 0
        else:
            now = (self._position // self.subwindow_size) % self.timestamp_period
            values = self._entries.astype(np.int64)
            occupied = values != self.empty_value
            in_window = (
                (now - values) % self.timestamp_period < self.num_subwindows
            )
            active = int((occupied & in_window).sum())
            stale = int((occupied & ~in_window).sum())
        fill = active / self.num_entries
        return {
            "gauges": {
                "position": self._position,
                "estimated_fp_rate": false_positive_rate_from_fill(
                    fill, self.num_hashes
                ),
                "observed_duplicate_rate": self.observed_duplicate_rate,
                "clean_cursor": self._clean_cursor,
                "stale_entries": stale,
            },
            "counters": {
                "elements": counter.elements,
                "duplicates": self.duplicates,
                "hash_evaluations": counter.hash_evaluations,
                "word_reads": counter.word_reads,
                "word_writes": counter.word_writes,
                "rotations": max(self._position, 0) // self.subwindow_size,
            },
            "fills": {
                "entries": fill,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TBFJumpingDetector(N={self.window_size}, Q={self.num_subwindows}, "
            f"m={self.num_entries}, k={self.num_hashes}, C={self.cleanup_slack})"
        )
