"""repro — duplicate-click (click-fraud) detection in pay-per-click streams.

A complete, from-scratch reproduction of

    Linfeng Zhang and Yong Guan,
    "Detecting Click Fraud in Pay-Per-Click Streams of Online
    Advertising Networks", ICDCS 2008.

The paper's contribution — the **GBF** (Group Bloom Filter) algorithm
for jumping windows and the **TBF** (Timing Bloom Filter) algorithm for
sliding windows — lives in :mod:`repro.core`.  Everything they depend
on or are compared against is built here too: hash families, window
models, classical/counting/stable Bloom filters, exact baselines, the
Metwally counting-filter scheme, synthetic click streams with fraud
campaigns, a pay-per-click advertising-network simulator with auctions
and billing, detection pipelines, theory, and the full experiment
harness reproducing every figure.

Quick start::

    from repro import TBFDetector

    detector = TBFDetector(window_size=100_000, num_entries=1_500_000,
                           num_hashes=10, seed=7)
    for click_id in click_ids:
        if detector.process(click_id):
            ...  # duplicate: do not bill
"""

from ._version import __version__
from .adnet import AdNetwork, BillingEngine, TrafficProfile, demo_network, run_audit
from .analysis import (
    plan_gbf_for_target,
    plan_gbf_from_memory,
    plan_tbf_for_target,
    plan_tbf_from_memory,
)
from .baselines import (
    ExactDetector,
    LandmarkBloomDetector,
    MetwallyCBFDetector,
    NaiveSubwindowBloomDetector,
    StableBloomDetector,
)
from .bloom import BloomFilter, CountingBloomFilter, StableBloomFilter
from .core import (
    GBFDetector,
    TBFDetector,
    TBFJumpingDetector,
    TimeBasedGBFDetector,
    TimeBasedTBFDetector,
)
from .adaptive import (
    AdaptiveController,
    AdaptiveDetector,
    AdaptiveTimedDetector,
    AgePartitionedBFDetector,
    ControllerConfig,
    ResizeEvent,
    TimeLimitedBFDetector,
    adaptive_detector,
    scaled_spec,
)
from .detection import (
    AlertEngine,
    APBFParams,
    DetectionPipeline,
    Detector,
    DetectorLifecycle,
    DetectorSpec,
    GBFParams,
    TBFParams,
    TimedDetector,
    TLBFParams,
    WindowSpec,
    as_lifecycle,
    create_detector,
    wrap_timed,
)
from .errors import (
    BudgetError,
    CapacityError,
    CheckpointError,
    ConfigurationError,
    OverloadedError,
    ProtocolError,
    RecoveryError,
    ReproError,
    StreamError,
)
from .resilience import (
    CheckpointStore,
    DeadLetterSink,
    FaultInjector,
    ReorderBuffer,
    SupervisedPipeline,
)
from .telemetry import (
    DetectorInstrument,
    MetricsRegistry,
    NullRegistry,
    TelemetrySession,
    Tracer,
    render_dashboard,
    theoretical_fp_bound,
)
from .streams import (
    BotnetCampaign,
    Click,
    IdentifierScheme,
    TrafficClass,
    distinct_stream,
    duplicated_stream,
)
from .windows import JumpingWindow, LandmarkWindow, SlidingWindow

__all__ = [
    "__version__",
    # core algorithms
    "GBFDetector",
    "TBFDetector",
    "TBFJumpingDetector",
    "TimeBasedGBFDetector",
    "TimeBasedTBFDetector",
    # baselines
    "ExactDetector",
    "LandmarkBloomDetector",
    "NaiveSubwindowBloomDetector",
    "MetwallyCBFDetector",
    "StableBloomDetector",
    # substrates
    "BloomFilter",
    "CountingBloomFilter",
    "StableBloomFilter",
    "SlidingWindow",
    "JumpingWindow",
    "LandmarkWindow",
    # streams & network
    "Click",
    "TrafficClass",
    "IdentifierScheme",
    "distinct_stream",
    "duplicated_stream",
    "BotnetCampaign",
    "AdNetwork",
    "TrafficProfile",
    "BillingEngine",
    "demo_network",
    "run_audit",
    # adaptive portfolio & lifecycle
    "AgePartitionedBFDetector",
    "TimeLimitedBFDetector",
    "AdaptiveDetector",
    "AdaptiveTimedDetector",
    "adaptive_detector",
    "AdaptiveController",
    "ControllerConfig",
    "ResizeEvent",
    "scaled_spec",
    "DetectorLifecycle",
    "as_lifecycle",
    # detection & planning
    "create_detector",
    "DetectorSpec",
    "Detector",
    "TimedDetector",
    "wrap_timed",
    "WindowSpec",
    "GBFParams",
    "TBFParams",
    "APBFParams",
    "TLBFParams",
    "DetectionPipeline",
    "AlertEngine",
    "plan_gbf_from_memory",
    "plan_gbf_for_target",
    "plan_tbf_from_memory",
    "plan_tbf_for_target",
    # resilience
    "SupervisedPipeline",
    "CheckpointStore",
    "DeadLetterSink",
    "ReorderBuffer",
    "FaultInjector",
    # telemetry
    "TelemetrySession",
    "MetricsRegistry",
    "NullRegistry",
    "DetectorInstrument",
    "Tracer",
    "render_dashboard",
    "theoretical_fp_bound",
    # errors
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "StreamError",
    "BudgetError",
    "CheckpointError",
    "RecoveryError",
    "ProtocolError",
    "OverloadedError",
]
