"""Exact duplicate detection — the ground truth every sketch is judged by.

Implements Definition 1 of the paper literally: a click is a duplicate
iff an identical click *previously accepted as valid* is still inside
the current decaying window.  State is a hash map from identifier to the
position of its most recent valid occurrence plus an arrival queue for
expiry, so memory grows with the number of distinct active clicks —
exactly the cost the paper's sketches avoid, which is why this class is
the reference labeler for experiments rather than a production detector.

Works over any count-based window model (sliding, jumping, landmark)
and has a time-based twin.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from ..errors import ConfigurationError
from ..windows import (
    CountBasedWindow,
    JumpingWindow,
    LandmarkWindow,
    SlidingWindow,
    TimeBasedWindow,
)


class ExactDetector:
    """Zero-error duplicate detector over a count-based window model.

    Parameters
    ----------
    window:
        Any :class:`~repro.windows.CountBasedWindow`; the detector
        defers all expiry semantics to it.
    """

    def __init__(self, window: CountBasedWindow) -> None:
        self.window = window
        self._last_valid: Dict[int, int] = {}
        self._arrivals: Deque[Tuple[int, int]] = deque()
        self.duplicates = 0
        self.valid = 0

    @classmethod
    def sliding(cls, window_size: int) -> "ExactDetector":
        return cls(SlidingWindow(window_size))

    @classmethod
    def jumping(cls, window_size: int, num_subwindows: int) -> "ExactDetector":
        return cls(JumpingWindow(window_size, num_subwindows))

    @classmethod
    def landmark(cls, window_size: int) -> "ExactDetector":
        return cls(LandmarkWindow(window_size))

    def process(self, identifier: int) -> bool:
        """Observe the next click; True means duplicate (exactly)."""
        self.window.observe()
        self._purge()
        last = self._last_valid.get(identifier)
        if last is not None and self.window.is_active(last):
            self.duplicates += 1
            return True
        position = self.window.position
        self._last_valid[identifier] = position
        self._arrivals.append((position, identifier))
        self.valid += 1
        return False

    def query(self, identifier: int) -> bool:
        last = self._last_valid.get(identifier)
        return last is not None and self.window.is_active(last)

    def _purge(self) -> None:
        """Drop expired valid records so memory tracks the active window."""
        arrivals = self._arrivals
        last_valid = self._last_valid
        window = self.window
        while arrivals and not window.is_active(arrivals[0][0]):
            position, identifier = arrivals.popleft()
            if last_valid.get(identifier) == position:
                del last_valid[identifier]

    def active_distinct(self) -> int:
        """Number of distinct valid clicks currently in the window."""
        self._purge()
        return len(self._last_valid)

    @property
    def memory_bits(self) -> int:
        """Rough modeled cost: 128 bits (id + position) per tracked record."""
        return 128 * (len(self._last_valid) + len(self._arrivals))

    def spec(self):
        """The :class:`~repro.detection.DetectorSpec` rebuilding this detector."""
        from ..detection.detector import DetectorSpec, WindowSpec

        window = self.window
        if type(window) is SlidingWindow:
            window_spec = WindowSpec("sliding", window.size)
        elif type(window) is JumpingWindow:
            window_spec = WindowSpec("jumping", window.size, window.num_subwindows)
        elif type(window) is LandmarkWindow:
            window_spec = WindowSpec("landmark", window.size)
        else:
            raise ConfigurationError(
                f"spec() cannot express window type {type(window).__name__}"
            )
        return DetectorSpec(algorithm="exact", window=window_spec)


class TimeBasedExactDetector:
    """Zero-error duplicate detector over a time-based window model."""

    def __init__(self, window: TimeBasedWindow) -> None:
        self.window = window
        self._last_valid: Dict[int, float] = {}
        self._arrivals: Deque[Tuple[float, int]] = deque()
        self.duplicates = 0
        self.valid = 0

    def process_at(self, identifier: int, timestamp: float) -> bool:
        self.window.observe_at(timestamp)
        self._purge()
        last = self._last_valid.get(identifier)
        if last is not None and self.window.is_active(last):
            self.duplicates += 1
            return True
        self._last_valid[identifier] = timestamp
        self._arrivals.append((timestamp, identifier))
        self.valid += 1
        return False

    def query(self, identifier: int) -> bool:
        last = self._last_valid.get(identifier)
        return last is not None and self.window.is_active(last)

    def _purge(self) -> None:
        arrivals = self._arrivals
        last_valid = self._last_valid
        window = self.window
        while arrivals and not window.is_active(arrivals[0][0]):
            timestamp, identifier = arrivals.popleft()
            if last_valid.get(identifier) == timestamp:
                del last_valid[identifier]

    @property
    def memory_bits(self) -> int:
        return 128 * (len(self._last_valid) + len(self._arrivals))
