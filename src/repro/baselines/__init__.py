"""Baselines and comparators: exact ground truth plus every scheme the
paper compares against or improves upon."""

from .exact import ExactDetector, TimeBasedExactDetector
from .landmark_bloom import LandmarkBloomDetector
from .metwally_cbf import MetwallyCBFDetector
from .naive_bloom import NaiveSubwindowBloomDetector
from .stable_bloom import StableBloomDetector

__all__ = [
    "ExactDetector",
    "TimeBasedExactDetector",
    "LandmarkBloomDetector",
    "NaiveSubwindowBloomDetector",
    "MetwallyCBFDetector",
    "StableBloomDetector",
]
