"""The "previous algorithm" of Figure 1: jumping windows via counting
Bloom filters (Metwally, Agrawal & El Abbadi, WWW 2005; critiqued in §3.3).

One counting Bloom filter per sub-window plus a *main* counting filter
holding the pointwise sum of all active sub-filters.  New elements are
checked against the main filter; when a sub-window expires, its filter
is subtracted from the main one counter by counter.

§3.3 identifies the two structural weaknesses this implementation
reproduces faithfully:

1. **Main-filter congestion** — the membership check sees all ``N``
   window elements in a single ``m``-counter filter, as if no
   sub-window structure existed, so its false-positive rate is that of
   a Bloom filter loaded with ``N`` (not ``N/Q``) elements.
2. **Counter saturation** — counters must be wide enough for ``N/Q``
   (sub-filters) and ``N`` (main) in the worst case; with realistic
   widths, saturated counters survive subtraction and *stick on*
   (extra false positives) or are over-subtracted (false negatives).
   Ablation A3 sweeps ``counter_bits`` to chart this failure mode.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence

from ..bitset.words import OperationCounter
from ..bloom import CountingBloomFilter
from ..errors import ConfigurationError
from ..hashing import HashFamily, SplitMixFamily


class MetwallyCBFDetector:
    """Jumping-window duplicate detector with counting Bloom filters.

    Parameters
    ----------
    window_size, num_subwindows:
        Jumping-window geometry ``N`` and ``Q``.
    num_counters:
        Counters per filter ``m`` (the "same size" axis of Figure 1).
    counter_bits:
        Width of each counter.  ``memory_bits`` reflects the true cost
        ``(Q + 1) * m * counter_bits`` — the hidden multiplier §3.3
        points out when comparing against plain-bit schemes.
    """

    def __init__(
        self,
        window_size: int,
        num_subwindows: int,
        num_counters: int,
        num_hashes: int = 4,
        counter_bits: int = 8,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
        if num_subwindows < 1:
            raise ConfigurationError(
                f"num_subwindows must be >= 1, got {num_subwindows}"
            )
        if window_size % num_subwindows != 0:
            raise ConfigurationError(
                f"window_size {window_size} not divisible by Q={num_subwindows}"
            )
        if family is None:
            family = SplitMixFamily(num_hashes, num_counters, seed)
        if family.num_buckets != num_counters:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != num_counters {num_counters}"
            )
        self.window_size = window_size
        self.num_subwindows = num_subwindows
        self.subwindow_size = window_size // num_subwindows
        self.num_counters = num_counters
        self.counter_bits = counter_bits
        self.family = family

        def _make() -> CountingBloomFilter:
            return CountingBloomFilter(
                num_counters,
                counter_bits=counter_bits,
                family=family,
                saturate=True,
            )

        self._make_filter = _make
        self._main = _make()
        self._subfilters: Deque[CountingBloomFilter] = deque([_make()])
        self._position = -1
        self.counter = OperationCounter()

    def _rotate(self) -> None:
        """Start a new sub-window; expire the eldest once Q are active."""
        if len(self._subfilters) == self.num_subwindows:
            eldest = self._subfilters.popleft()
            # The O(m) subtraction of §3.3 (performed as a burst here;
            # the paper notes FPs grow if inserts land before it ends).
            self._main.subtract_filter(eldest)
            self.counter.word_reads += 2 * self.num_counters
            self.counter.word_writes += self.num_counters
        self._subfilters.append(self._make_filter())

    def process(self, identifier: int) -> bool:
        """Observe the next click; True means duplicate per the main filter."""
        self.counter.hash_evaluations += self.family.num_hashes
        return self.process_indices(self.family.indices(identifier))

    def process_indices(self, indices: Sequence[int]) -> bool:
        self._position += 1
        if self._position > 0 and self._position % self.subwindow_size == 0:
            self._rotate()
        self.counter.word_reads += len(indices)
        self.counter.elements += 1
        if self._main.contains_indices(indices):
            return True
        self._subfilters[-1].add_indices(list(indices))
        self._main.add_indices(list(indices))
        self.counter.word_reads += 2 * len(indices)
        self.counter.word_writes += 2 * len(indices)
        return False

    def query(self, identifier: int) -> bool:
        return self._main.contains(identifier)

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    @property
    def memory_bits(self) -> int:
        """True footprint: main + Q sub-filters, each m counters wide."""
        return (len(self._subfilters) + 1) * self.num_counters * self.counter_bits

    @property
    def saturation_events(self) -> int:
        """Counter-ceiling hits across main and sub-filters (ablation A3)."""
        return self._main.saturation_events + sum(
            subfilter.saturation_events for subfilter in self._subfilters
        )
