"""Naive per-sub-window Bloom filters — the strawman GBF improves on (§3.1).

Keeps ``Q + 1`` *separate* ``m``-bit Bloom filters sharing one hash
family: ``Q`` for the active sub-windows, one spare being cleaned
incrementally, exactly the memory organization of the GBF but without
the lane interleaving.  A duplicate check therefore reads up to
``Q * k`` memory words instead of GBF's ``k * ceil((Q+1)/D)``.

Because the two algorithms make identical accept/reject decisions for
every input (only the memory layout differs), this detector doubles as
a differential-testing oracle for :class:`~repro.core.gbf.GBFDetector`
when both are built over the same hash family.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..bitset import BitVector
from ..bitset.words import OperationCounter
from ..errors import ConfigurationError
from ..hashing import HashFamily, SplitMixFamily


class NaiveSubwindowBloomDetector:
    """Duplicate detector over a jumping window with separate filters."""

    def __init__(
        self,
        window_size: int,
        num_subwindows: int,
        bits_per_filter: int,
        num_hashes: int = 4,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
        if num_subwindows < 1:
            raise ConfigurationError(
                f"num_subwindows must be >= 1, got {num_subwindows}"
            )
        if window_size % num_subwindows != 0:
            raise ConfigurationError(
                f"window_size {window_size} not divisible by Q={num_subwindows}"
            )
        if family is None:
            family = SplitMixFamily(num_hashes, bits_per_filter, seed)
        if family.num_buckets != bits_per_filter:
            raise ConfigurationError(
                f"hash family range {family.num_buckets} != bits_per_filter "
                f"{bits_per_filter}"
            )
        self.window_size = window_size
        self.num_subwindows = num_subwindows
        self.subwindow_size = window_size // num_subwindows
        self.bits_per_filter = bits_per_filter
        self.family = family
        self.num_filters = num_subwindows + 1

        self._filters: List[BitVector] = [
            BitVector(bits_per_filter) for _ in range(self.num_filters)
        ]
        self._position = -1
        self._current = 0
        self._active: List[int] = [0]
        self._cleaning: Optional[int] = None
        self._clean_cursor = 0
        self._clean_per_element = -(-bits_per_filter // self.subwindow_size)
        self.counter = OperationCounter()

    def _rotate(self) -> None:
        if self._cleaning is not None and self._clean_cursor < self.bits_per_filter:
            raise AssertionError("naive detector: rotation before cleaning finished")
        subwindow = self._position // self.subwindow_size
        self._current = subwindow % self.num_filters
        self._active.append(self._current)
        if subwindow >= self.num_subwindows:
            expired = (subwindow + 1) % self.num_filters
            self._active.remove(expired)
            self._cleaning = expired
            self._clean_cursor = 0

    def _clean_step(self) -> None:
        if self._cleaning is None or self._clean_cursor >= self.bits_per_filter:
            return
        bits = self._filters[self._cleaning]
        stop = min(self._clean_cursor + self._clean_per_element, self.bits_per_filter)
        for index in range(self._clean_cursor, stop):
            bits.clear(index)
        self.counter.word_reads += stop - self._clean_cursor
        self.counter.word_writes += stop - self._clean_cursor
        self._clean_cursor = stop

    def process(self, identifier: int) -> bool:
        """Observe the next click; True means duplicate (not recorded)."""
        self.counter.hash_evaluations += self.family.num_hashes
        return self.process_indices(self.family.indices(identifier))

    def process_indices(self, indices: Sequence[int]) -> bool:
        self._position += 1
        if self._position > 0 and self._position % self.subwindow_size == 0:
            self._rotate()
        self._clean_step()

        # The costly part the GBF removes: every active filter is probed
        # independently, up to Q * k reads.
        reads = 0
        duplicate = False
        for filter_index in self._active:
            bits = self._filters[filter_index]
            matched = True
            for index in indices:
                reads += 1
                if not bits.get(index):
                    matched = False
                    break
            if matched:
                duplicate = True
                break
        self.counter.word_reads += reads
        self.counter.elements += 1
        if duplicate:
            return True
        current = self._filters[self._current]
        for index in indices:
            current.set(index)
        self.counter.word_writes += len(indices)
        return False

    def query(self, identifier: int) -> bool:
        indices = self.family.indices(identifier)
        return any(
            self._filters[filter_index].all_set(indices)
            for filter_index in self._active
        )

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    @property
    def memory_bits(self) -> int:
        return self.bits_per_filter * self.num_filters

    def active_filters(self) -> List[int]:
        return sorted(self._active)
