"""Landmark-window Bloom filter (Metwally, Agrawal & El Abbadi, WWW 2005).

The direct deployment of a classical Bloom filter that §3.1 starts
from: all clicks of an epoch are hashed into one filter, and the filter
is cleared when the epoch ends.  Simple and fast, but the window "jumps"
by its full size — a duplicate pair straddling an epoch boundary is
never detected, and the epoch reset is an O(m) burst.
"""

from __future__ import annotations

from typing import Optional

from ..bitset.words import OperationCounter
from ..bloom import BloomFilter
from ..errors import ConfigurationError
from ..hashing import HashFamily
from ..windows import LandmarkWindow


class LandmarkBloomDetector:
    """Duplicate detector over a landmark window of ``window_size`` arrivals."""

    def __init__(
        self,
        window_size: int,
        num_bits: int,
        num_hashes: int = 4,
        seed: int = 0,
        family: Optional[HashFamily] = None,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
        self.window = LandmarkWindow(window_size)
        self.filter = BloomFilter(num_bits, num_hashes, seed, family)
        self.counter = OperationCounter()

    def process(self, identifier: int) -> bool:
        """Observe the next click; True means duplicate within the epoch."""
        self.window.observe()
        if self.window.at_epoch_boundary() and self.window.position > 0:
            # Epoch switch: the O(m) clear the decaying-window algorithms
            # amortize away happens here all at once.
            self.filter.clear()
            self.counter.word_writes += self.filter.num_bits
        self.counter.hash_evaluations += self.filter.num_hashes
        self.counter.word_reads += self.filter.num_hashes
        duplicate = self.filter.add_if_absent(identifier)
        if not duplicate:
            self.counter.word_writes += self.filter.num_hashes
        self.counter.elements += 1
        return duplicate

    def query(self, identifier: int) -> bool:
        return self.filter.contains(identifier)

    @property
    def num_hashes(self) -> int:
        return self.filter.num_hashes

    @property
    def memory_bits(self) -> int:
        return self.filter.num_bits
