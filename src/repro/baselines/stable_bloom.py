"""Stable-Bloom-filter duplicate detector (Deng & Rafiei, SIGMOD 2006).

The related-work alternative of §2.4 wrapped in the library's common
detector interface.  Unlike every window-based detector here it has no
crisp window at all: old elements fade out *probabilistically* as their
cells are randomly decremented, so it exhibits **false negatives** —
the flaw the paper's zero-FN guarantee (Theorems 1.1, 2.1) is defined
against.  The experiment harness runs it side by side with TBF to
demonstrate the difference.
"""

from __future__ import annotations

from typing import Optional

from ..bloom import StableBloomFilter
from ..errors import ConfigurationError
from ..hashing import HashFamily


class StableBloomDetector:
    """Duplicate detector backed by a stable Bloom filter.

    ``window_size`` is *nominal*: it is used only by
    :meth:`with_tuned_decay` to pick the decrement rate ``p`` so that an
    element's cells survive roughly ``window_size`` arrivals — the
    closest SBF analogue of a sliding window.
    """

    def __init__(
        self,
        num_cells: int,
        num_hashes: int = 4,
        cell_bits: int = 3,
        decrements_per_insert: int = 10,
        seed: int = 0,
        family: Optional[HashFamily] = None,
        window_size: Optional[int] = None,
    ) -> None:
        self.filter = StableBloomFilter(
            num_cells,
            num_hashes=num_hashes,
            cell_bits=cell_bits,
            decrements_per_insert=decrements_per_insert,
            seed=seed,
            family=family,
        )
        self.window_size = window_size

    @classmethod
    def with_tuned_decay(
        cls,
        window_size: int,
        num_cells: int,
        num_hashes: int = 4,
        cell_bits: int = 3,
        seed: int = 0,
    ) -> "StableBloomDetector":
        """Pick ``p`` so a cell's expected survival matches ``window_size``.

        A freshly set cell at value ``Max`` is decremented with
        probability ``p/m`` per arrival, so it survives about
        ``Max * m / p`` arrivals; solving for ``p`` gives the decrement
        rate that makes the SBF's memory horizon comparable to a sliding
        window of ``window_size``.
        """
        if window_size < 1:
            raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
        max_value = (1 << cell_bits) - 1
        decrements = max(1, round(max_value * num_cells / window_size))
        return cls(
            num_cells,
            num_hashes=num_hashes,
            cell_bits=cell_bits,
            decrements_per_insert=decrements,
            seed=seed,
            window_size=window_size,
        )

    def process(self, identifier: int) -> bool:
        """Observe the next click; True means it looked like a duplicate.

        May return False for a genuine duplicate whose cells decayed —
        the false-negative behaviour the paper's algorithms eliminate.
        """
        return self.filter.process(identifier)

    def query(self, identifier: int) -> bool:
        return self.filter.query(identifier)

    @property
    def num_hashes(self) -> int:
        return self.filter.num_hashes

    @property
    def memory_bits(self) -> int:
        return self.filter.memory_bits
