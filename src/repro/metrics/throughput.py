"""Wall-clock throughput measurement.

Interpreter-bound numbers (this is Python, the paper's testbed was C),
but *relative* throughput between algorithms under identical harness
overhead is meaningful and is what the throughput bench reports
alongside the word-operation counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one timed run."""

    elements: int
    seconds: float

    @property
    def elements_per_second(self) -> float:
        return self.elements / self.seconds if self.seconds > 0 else float("inf")

    @property
    def microseconds_per_element(self) -> float:
        return 1e6 * self.seconds / self.elements if self.elements else 0.0


def time_detector(detector, identifiers: Sequence[int]) -> ThroughputResult:
    """Time ``detector.process`` over ``identifiers`` (pre-materialized)."""
    process = detector.process
    start = time.perf_counter()
    for identifier in identifiers:
        process(identifier)
    elapsed = time.perf_counter() - start
    return ThroughputResult(elements=len(identifiers), seconds=elapsed)


def time_callable(function, batches: Iterable) -> ThroughputResult:
    """Time ``function(batch)`` across batches; counts ``len(batch)`` each."""
    total = 0
    start = time.perf_counter()
    for batch in batches:
        function(batch)
        total += len(batch)
    elapsed = time.perf_counter() - start
    return ThroughputResult(elements=total, seconds=elapsed)
