"""Plain-text rendering of experiment tables and figure series.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and consistent across
experiments, and emit machine-readable CSV alongside when asked.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 6) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-4 or abs(value) >= 1e7):
            return f"{value:.3e}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 6,
) -> str:
    """Render an aligned fixed-width text table."""
    formatted_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    separator = "-+-".join("-" * width for width in widths)
    out.write(
        " | ".join(header.ljust(width) for header, width in zip(headers, widths))
        + "\n"
    )
    out.write(separator + "\n")
    for row in formatted_rows:
        out.write(
            " | ".join(cell.rjust(width) for cell, width in zip(row, widths)) + "\n"
        )
    return out.getvalue()


def render_series(
    x_label: str,
    x_values: Sequence[Cell],
    series: Sequence[tuple],
    title: Optional[str] = None,
    precision: int = 6,
) -> str:
    """Render figure-style data: one x column plus named y series.

    ``series`` is a sequence of ``(name, values)`` pairs, one per curve.
    """
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for index, x_value in enumerate(x_values):
        rows.append([x_value] + [values[index] for _, values in series])
    return render_table(headers, rows, title=title, precision=precision)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Minimal CSV text for persisting results next to bench output."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(format_cell(cell, precision=10) for cell in row))
    return "\n".join(lines) + "\n"
