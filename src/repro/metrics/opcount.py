"""Operation-count measurement helpers.

Detectors expose a :class:`~repro.bitset.words.OperationCounter` on
their ``counter`` attribute; these helpers snapshot it around a
workload and compare measured per-element costs with the predictions
of :mod:`repro.core.memory_model` (the Theorem 1.3 / 2.3 claims).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..bitset.words import OperationCounter, OperationRates


@dataclass(frozen=True)
class OpMeasurement:
    """Measured per-element operation rates over one workload segment."""

    elements: int
    rates: OperationRates

    @property
    def words_per_element(self) -> float:
        return self.rates.total_word_ops


def measure_ops(
    detector, identifiers: Iterable[int], batch_size: Optional[int] = None
) -> OpMeasurement:
    """Process ``identifiers`` and return per-element operation rates.

    Resets the detector's counter first so the measurement covers only
    this segment (feed any warm-up stream before calling).  With
    ``batch_size`` set, the stream runs through the detector's
    vectorized ``process_batch`` path instead of the scalar loop; the
    batch path reports the same word-operation totals as the scalar one
    (asserted by tests), so the measurement is unchanged — only faster.
    """
    counter: OperationCounter = detector.counter
    counter.reset()
    if batch_size is not None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        array = np.fromiter(identifiers, dtype=np.uint64)
        process_batch = detector.process_batch
        for start in range(0, array.shape[0], batch_size):
            process_batch(array[start : start + batch_size])
    else:
        process = detector.process
        for identifier in identifiers:
            process(identifier)
    return OpMeasurement(elements=counter.elements, rates=counter.per_element())


def relative_error(measured: float, predicted: float) -> float:
    """|measured - predicted| / predicted, guarding the zero case."""
    if predicted == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - predicted) / predicted
