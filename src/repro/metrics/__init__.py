"""Measurement: confusion matrices, op counts, throughput, reporting."""

from .confusion import ConfusionMatrix
from .opcount import OpMeasurement, measure_ops, relative_error
from .reporting import format_cell, render_series, render_table, to_csv
from .throughput import ThroughputResult, time_callable, time_detector

__all__ = [
    "ConfusionMatrix",
    "OpMeasurement",
    "measure_ops",
    "relative_error",
    "ThroughputResult",
    "time_detector",
    "time_callable",
    "render_table",
    "render_series",
    "to_csv",
    "format_cell",
]
