"""Confusion-matrix accounting against ground truth.

The experiment protocol compares a sketch detector's per-element
verdicts against exact labels.  Positive = "duplicate".  Per the
paper's guarantees, GBF/TBF should show FN = 0 in the self-consistent
sense (see DESIGN.md §3); FPs are the quantity Figures 1-2 plot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ConfusionMatrix:
    """Streaming 2x2 confusion counts for duplicate detection."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    def update(self, predicted_duplicate: bool, actual_duplicate: bool) -> None:
        if predicted_duplicate and actual_duplicate:
            self.true_positives += 1
        elif predicted_duplicate:
            self.false_positives += 1
        elif actual_duplicate:
            self.false_negatives += 1
        else:
            self.true_negatives += 1

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def false_positive_rate(self) -> float:
        """FPs over actual negatives — the rate the paper's figures plot."""
        negatives = self.false_positives + self.true_negatives
        return self.false_positives / negatives if negatives else 0.0

    @property
    def false_negative_rate(self) -> float:
        positives = self.true_positives + self.false_negatives
        return self.false_negatives / positives if positives else 0.0

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 1.0

    @property
    def recall(self) -> float:
        positives = self.true_positives + self.false_negatives
        return self.true_positives / positives if positives else 1.0

    @property
    def f1(self) -> float:
        precision = self.precision
        recall = self.recall
        if precision + recall == 0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    @property
    def accuracy(self) -> float:
        total = self.total
        return (self.true_positives + self.true_negatives) / total if total else 1.0

    def merged_with(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            true_negatives=self.true_negatives + other.true_negatives,
            false_negatives=self.false_negatives + other.false_negatives,
        )
