"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   synthesize a click stream (with optional botnet traffic)
               to CSV/JSONL
``detect``     run a duplicate detector over a stream file and report
               duplicate statistics, per-publisher quality, and alerts
``plan``       size a detector for a window and FP target / memory budget
``figures``    regenerate the paper's figures (same output as the
               benchmark harness, without pytest)
``monitor``    run a detector over a stream with live telemetry: periodic
               dashboard refreshes, optional Prometheus exposition and
               Chrome-trace export (see docs/observability.md)
``serve``      run the network click-ingest server: TCP batches in,
               verdicts out, graceful drain on SIGTERM
               (see docs/serving.md)
``trace``      sample a distributed request trace through the serve
               stack (client → server → workers), merge the per-process
               span shards into one Chrome-trace timeline, and report
               latency percentiles (see docs/observability.md)
``cluster``    run the cluster serving tier — a consistent-hash
               scatter/gather router over N serve nodes — or rebalance
               a drained cluster's shard checkpoints onto a resized
               fleet (see docs/serving.md §"Cluster topology")
``chaos``      soak the serve stack under injected faults and verify
               exactly-once delivery end to end

Examples
--------
::

    python -m repro generate --duration 3600 --botnet-bots 50 out.jsonl
    python -m repro detect --algorithm tbf --window 8192 --target-fp 1e-3 out.jsonl
    python -m repro plan --window 1048576 --target-fp 0.001
    python -m repro figures --which 2b --scale 256
    python -m repro monitor --algorithm gbf --every 2048 out.jsonl
    python -m repro serve --algorithm tbf --window 65536 --port 9000
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .adnet import AdNetwork, TrafficProfile, competitor_botnet
from .analysis import plan_gbf_for_target, plan_tbf_for_target
from .detection import (
    AlertEngine,
    ClickQualityTracker,
    DetectionPipeline,
    DetectorSpec,
    QualityConfig,
    WindowSpec,
    create_detector,
    default_rules,
)
from .metrics import render_table
from .streams import load_clicks, read_batches, write_clicks_csv, write_clicks_jsonl
from .telemetry import TelemetrySession, render_dashboard


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Duplicate-click detection in pay-per-click streams "
        "(Zhang & Guan, ICDCS 2008 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesize a click stream")
    generate.add_argument("output", help="output path (.csv or .jsonl)")
    generate.add_argument("--duration", type=float, default=3600.0,
                          help="simulated seconds of traffic (default 3600)")
    generate.add_argument("--click-rate", type=float, default=2.0,
                          help="legitimate clicks per second (default 2.0)")
    generate.add_argument("--visitors", type=int, default=300)
    generate.add_argument("--botnet-bots", type=int, default=0,
                          help="attach a botnet campaign with this many bots")
    generate.add_argument("--bot-interval", type=float, default=120.0,
                          help="mean seconds between a bot's clicks")
    generate.add_argument("--seed", type=int, default=0)

    detect = commands.add_parser("detect", help="run a detector over a stream file")
    _add_detector_args(detect)
    detect.add_argument("--quality", action="store_true",
                        help="also report per-publisher click quality")
    detect.add_argument("--workers", type=int, default=1,
                        help="run the detector sharded across this many "
                        "worker processes (requires --algorithm tbf; "
                        "default 1 = in-process)")
    detect.add_argument("--chunk-size", type=int, default=4096,
                        help="clicks per batch on the multi-process path "
                        "(default 4096)")

    plan = commands.add_parser("plan", help="size a detector")
    plan.add_argument("--window", type=int, required=True)
    plan.add_argument("--subwindows", type=int, default=8)
    plan.add_argument("--target-fp", type=float, default=0.001)

    figures = commands.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("--which", default="all", choices=["1", "2a", "2b", "all"])
    figures.add_argument("--scale", type=int, default=None,
                         help="size divisor vs the paper's N = 2^20 "
                         "(default: REPRO_SCALE or 64)")
    figures.add_argument("--seed", type=int, default=42)

    monitor = commands.add_parser(
        "monitor", help="run a detector with a live telemetry dashboard")
    _add_detector_args(monitor, with_input=False)
    monitor.add_argument("input", nargs="?", default=None,
                         help="stream file from `repro generate` "
                         "(omit with --cluster)")
    monitor.add_argument("--cluster", default=None, metavar="STATE_DIR",
                         help="instead of running a detector, render the "
                         "merged router + per-node telemetry from a drained "
                         "cluster's manifest (see `repro cluster run`)")
    monitor.add_argument("--every", type=int, default=2048,
                         help="clicks between dashboard refreshes (default 2048)")
    monitor.add_argument("--chunk-size", type=int, default=1024,
                         help="batch size for the vectorized path (default 1024)")
    monitor.add_argument("--prometheus", action="store_true",
                         help="print Prometheus text exposition at the end")
    monitor.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write Chrome-trace JSON of pipeline spans")

    serve = commands.add_parser(
        "serve", help="run the network click-ingest server")
    _add_detector_args(serve, with_input=False)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = ephemeral, printed at boot)")
    serve.add_argument("--workers", type=int, default=1,
                       help="shard the detector across this many worker "
                       "processes (requires --algorithm tbf; default 1 = "
                       "in-process)")
    serve.add_argument("--max-batch", type=int, default=8192,
                       help="coalescer target clicks per engine batch")
    serve.add_argument("--max-delay-ms", type=float, default=5.0,
                       help="max milliseconds a request waits for coalescing")
    serve.add_argument("--max-inflight-mib", type=float, default=32.0,
                       help="global admission-control budget in MiB")
    serve.add_argument("--skew-tolerance", type=float, default=1.0,
                       help="time-based detectors: seconds a batch may lag "
                       "the stream watermark before it is refused (smaller "
                       "lags are clamped; default 1.0)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="drain checkpoints + resume-on-start directory")
    serve.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="append span shards here for sampled "
                       "(FLAG_TRACE) requests; merge with `repro trace "
                       "--merge-only --trace-dir DIR`")
    serve.add_argument("--adaptive-interval", type=int, default=0,
                       metavar="GROUPS",
                       help="resize controller: sample the live FP estimate "
                       "every GROUPS coalesced batches and grow/shrink the "
                       "detector in place (0 disables; inline engine only)")
    serve.add_argument("--adaptive-target-fp", type=float, default=None,
                       metavar="FP",
                       help="FP baseline for the controller (default: the "
                       "configuration's theoretical bound)")
    serve.add_argument("--flight-dir", default=None, metavar="DIR",
                       help="flight-recorder crash dumps land here "
                       "(default: the checkpoint directory)")

    tune = commands.add_parser(
        "tune",
        help="compare the detector portfolio at a target FP and suggest "
             "adaptive-controller settings")
    tune.add_argument("--window", type=int, default=8192,
                      help="window size in clicks (default 8192)")
    tune.add_argument("--subwindows", type=int, default=8,
                      help="Q for the jumping-window GBF plan")
    tune.add_argument("--target-fp", type=float, default=0.001)
    tune.add_argument("--resolution", type=int, default=16,
                      help="aged slices for the time-limited plan")

    trace = commands.add_parser(
        "trace",
        help="sample a distributed trace through the serve stack and "
        "merge it into a Chrome-trace timeline")
    trace.add_argument("--clicks", type=int, default=20_000,
                       help="synthetic clicks to drive (default 20000)")
    trace.add_argument("--batch", type=int, default=512,
                       help="clicks per client batch (default 512)")
    trace.add_argument("--workers", type=int, default=2,
                       help="worker processes behind the server (default 2)")
    trace.add_argument("--window", type=int, default=8192)
    trace.add_argument("--sample", type=float, default=0.1,
                       help="fraction of batches carrying trace context "
                       "(default 0.1)")
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="merged Chrome-trace JSON (open in "
                       "chrome://tracing or Perfetto; default trace.json)")
    trace.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="span-shard directory (default: temporary)")
    trace.add_argument("--merge-only", action="store_true",
                       help="skip the demo run; merge the shards already "
                       "in --trace-dir (e.g. from `repro serve "
                       "--trace-dir`)")
    trace.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="also write the Prometheus text exposition "
                       "(stage latency histograms + quantile gauges)")

    cluster = commands.add_parser(
        "cluster",
        help="run or operate the cluster serving tier "
        "(router + N serve nodes; see docs/serving.md)")
    cluster_cmds = cluster.add_subparsers(dest="cluster_command", required=True)
    cluster_run = cluster_cmds.add_parser(
        "run", help="boot a router + N local serve nodes; SIGTERM drains "
        "the whole cluster and writes a journaled manifest")
    cluster_run.add_argument("--nodes", type=int, default=2,
                             help="serve nodes behind the router (default 2)")
    cluster_run.add_argument("--shards", type=int, default=8,
                             help="fixed global shard count — the unit of "
                             "checkpointed state; node counts may change "
                             "later, this may not (default 8)")
    cluster_run.add_argument("--window", type=int, default=8192,
                             help="sliding-window size in clicks (default 8192)")
    cluster_run.add_argument("--target-fp", type=float, default=0.001)
    cluster_run.add_argument("--seed", type=int, default=0)
    cluster_run.add_argument("--host", default="127.0.0.1")
    cluster_run.add_argument("--port", type=int, default=0,
                             help="router port (default 0 = ephemeral, "
                             "printed at boot)")
    cluster_run.add_argument("--state-dir", required=True, metavar="DIR",
                             help="per-node checkpoint stores + cluster "
                             "manifests live here; an existing directory "
                             "resumes from its checkpoints")
    cluster_rebalance = cluster_cmds.add_parser(
        "rebalance", help="resize a drained cluster by shipping shard "
        "checkpoints between node stores (no detector is deserialized)")
    cluster_rebalance.add_argument("--state-dir", required=True, metavar="DIR")
    cluster_rebalance.add_argument("--nodes", type=int, required=True,
                                   help="new node count")

    chaos = commands.add_parser(
        "chaos",
        help="soak the serve stack under injected faults and reconcile")
    chaos.add_argument("--clicks", type=int, default=50_000,
                       help="synthetic clicks to deliver (default 50000)")
    chaos.add_argument("--batch", type=int, default=256,
                       help="clicks per client batch (default 256)")
    chaos.add_argument("--seed", type=int, default=7,
                       help="seeds the stream, the fault plan, and the "
                       "client jitter — a failing seed is reproducible")
    chaos.add_argument("--drain-after", type=float, default=1.0,
                       help="seconds into the load to SIGTERM-drain the "
                       "server and restore a fresh one from its checkpoint "
                       "(negative = never restart; default 1.0)")
    chaos.add_argument("--timeout", type=float, default=1.0,
                       help="client per-response deadline in seconds")
    chaos.add_argument("--retries", type=int, default=12,
                       help="client reconnect budget per delivery failure")
    chaos.add_argument("--no-engine-faults", action="store_true",
                       help="skip the injected engine kill/stall and "
                       "checkpoint-write failure")
    chaos.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="keep the drain checkpoints here for inspection "
                       "(default: a temporary directory)")
    chaos.add_argument("--cluster-nodes", type=int, default=None,
                       metavar="N",
                       help="route the soak through a scatter/gather router "
                       "over N serve nodes; the mid-schedule fault becomes "
                       "a node kill + restore failover (default: one server)")

    return parser


def _add_detector_args(
    parser: argparse.ArgumentParser, with_input: bool = True
) -> None:
    """Stream + detector-sizing arguments shared by detect/monitor/serve."""
    if with_input:
        parser.add_argument("input", help="stream file from `repro generate`")
    parser.add_argument("--algorithm", default="tbf",
                        choices=["tbf", "gbf", "tbf-jumping", "apbf", "exact",
                                 "metwally-cbf", "stable-bloom"])
    parser.add_argument("--window", type=int, default=8192,
                        help="window size in clicks (default 8192)")
    parser.add_argument("--subwindows", type=int, default=8,
                        help="Q for jumping-window algorithms")
    parser.add_argument("--target-fp", type=float, default=None)
    parser.add_argument("--memory-kib", type=float, default=None,
                        help="memory budget in KiB (alternative to --target-fp)")
    parser.add_argument("--seed", type=int, default=0)


def _spec_from_args(args: argparse.Namespace, shards: int = 1) -> DetectorSpec:
    """The :class:`DetectorSpec` the sizing flags describe."""
    kind = "jumping" if args.algorithm in ("gbf", "tbf-jumping", "metwally-cbf") else "sliding"
    subwindows = args.subwindows if kind == "jumping" else 1
    window = args.window - args.window % subwindows if subwindows > 1 else args.window
    sizing = {}
    if args.algorithm != "exact":
        if args.memory_kib is not None:
            sizing["memory_bits"] = int(args.memory_kib * 8 * 1024)
        else:
            sizing["target_fp"] = args.target_fp if args.target_fp else 0.001
    return DetectorSpec(
        algorithm=args.algorithm,
        window=WindowSpec(kind, window, subwindows),
        seed=args.seed,
        shards=shards,
        **sizing,
    )


def _detector_from_args(args: argparse.Namespace):
    """Build the detector `detect`/`monitor`/`serve` all describe."""
    spec = _spec_from_args(args)
    return create_detector(spec), spec.window.size


def _command_generate(args: argparse.Namespace) -> int:
    network = AdNetwork(seed=args.seed)
    network.add_advertiser("alpha", budget=1e9,
                           bids={"one": 1.0, "two": 0.6, "three": 0.3})
    network.add_advertiser("beta", budget=1e9,
                           bids={"two": 0.9, "three": 0.5, "four": 0.4})
    network.add_advertiser("gamma", budget=1e9,
                           bids={"one": 0.7, "four": 0.6, "five": 0.2})
    network.add_publisher("portal", traffic_weight=2.0)
    network.add_publisher("blogs", traffic_weight=1.0)
    network.run_auctions(["one", "two", "three", "four", "five"])
    if args.botnet_bots > 0:
        competitor_botnet(network, num_bots=args.botnet_bots,
                          mean_interval=args.bot_interval, seed=args.seed + 1)
    clicks = network.run(
        duration=args.duration,
        profile=TrafficProfile(click_rate=args.click_rate,
                               num_visitors=args.visitors),
    )
    for click in clicks:
        click.cost = network.ad_links[click.ad_id].cpc
    if args.output.endswith(".csv"):
        count = write_clicks_csv(args.output, clicks)
    else:
        count = write_clicks_jsonl(args.output, clicks)
    fraud = sum(1 for c in clicks if c.is_fraud)
    print(f"wrote {count} clicks to {args.output} ({fraud} fraudulent)")
    return 0


def _command_detect(args: argparse.Namespace) -> int:
    if args.workers > 1:
        return _detect_parallel(args)
    clicks = load_clicks(args.input)
    detector, window = _detector_from_args(args)

    quality = ClickQualityTracker(QualityConfig(window=window, grace_clicks=0))
    engine = AlertEngine(default_rules())
    pipeline = DetectionPipeline(detector)
    duplicates = 0
    for click in clicks:
        is_duplicate = pipeline.process_click(click)
        duplicates += is_duplicate
        quality.observe(click, is_duplicate)
        engine.observe(click, is_duplicate)

    total = len(clicks)
    print(f"{total} clicks; {duplicates} duplicates "
          f"({100 * duplicates / max(total, 1):.2f}%)")
    fraud_total = sum(1 for c in clicks if c.is_fraud)
    if fraud_total:
        print(f"(stream ground truth: {fraud_total} clicks from fraud campaigns)")
    top = pipeline.scoreboard.top_sources(count=5, min_clicks=10)
    if top:
        print("\ntop suspicious sources:")
        for key, stats in top:
            print(f"  {key:#014x}  {stats.clicks:6d} clicks  "
                  f"{100 * stats.duplicate_rate:5.1f}% duplicates")
    if args.quality:
        print("\nper-publisher click quality:")
        rows = [
            [publisher, data["clicks"], data["quality"], data["multiplier"]]
            for publisher, data in sorted(quality.report().items())
        ]
        print(render_table(["publisher", "clicks", "quality", "smart-price x"], rows))
    if engine.alerts:
        print(f"\n{len(engine.alerts)} alerts (first 5):")
        for alert in engine.alerts[:5]:
            print(f"  [{alert.rule_name}] {alert.scope} {alert.key:#x}: "
                  f"{100 * alert.duplicate_rate:.0f}% duplicates over "
                  f"{alert.clicks} clicks")
    return 0


def _detect_parallel(args: argparse.Namespace) -> int:
    """``detect --workers N``: sharded detection across worker processes.

    The stream is consumed in batches (``read_batches``), routed once in
    this process, and probed in ``N`` workers through shared-memory
    rings.  Scoring, quality, and alerting consume the exact stream-order
    verdicts, so the report matches the single-process command.
    """
    import numpy as np

    from .parallel import lift_sharded

    if args.algorithm != "tbf":
        print(f"error: --workers requires --algorithm tbf "
              f"(got {args.algorithm!r}); only count-based TBF shards are "
              f"wired into the CLI", file=sys.stderr)
        return 2
    # One spec, sharded: the factory sizes a single TBF for the
    # window/FP budget and spreads the same total memory across one
    # shard per worker.
    spec = _spec_from_args(args, shards=args.workers)
    sharded = create_detector(spec)
    window = spec.window.size
    quality = ClickQualityTracker(QualityConfig(window=window, grace_clicks=0))
    engine = AlertEngine(default_rules())
    pipeline = DetectionPipeline(sharded)
    identify = pipeline.scheme.identify
    parallel = lift_sharded(sharded, args.workers)
    total = duplicates = fraud_total = 0
    try:
        for batch in read_batches(args.input, max(1, args.chunk_size)):
            identifiers = np.fromiter(
                (identify(click) for click in batch),
                dtype=np.uint64,
                count=len(batch),
            )
            verdicts = parallel.process_batch(identifiers)
            for click, verdict in zip(batch, verdicts):
                is_duplicate = bool(verdict)
                total += 1
                duplicates += is_duplicate
                fraud_total += click.is_fraud
                pipeline.scoreboard.record(click, is_duplicate)
                quality.observe(click, is_duplicate)
                engine.observe(click, is_duplicate)
    finally:
        parallel.close(sync=True)

    print(f"{total} clicks; {duplicates} duplicates "
          f"({100 * duplicates / max(total, 1):.2f}%)  "
          f"[{args.workers} workers]")
    if fraud_total:
        print(f"(stream ground truth: {fraud_total} clicks from fraud campaigns)")
    top = pipeline.scoreboard.top_sources(count=5, min_clicks=10)
    if top:
        print("\ntop suspicious sources:")
        for key, stats in top:
            print(f"  {key:#014x}  {stats.clicks:6d} clicks  "
                  f"{100 * stats.duplicate_rate:5.1f}% duplicates")
    if args.quality:
        print("\nper-publisher click quality:")
        rows = [
            [publisher, data["clicks"], data["quality"], data["multiplier"]]
            for publisher, data in sorted(quality.report().items())
        ]
        print(render_table(["publisher", "clicks", "quality", "smart-price x"], rows))
    if engine.alerts:
        print(f"\n{len(engine.alerts)} alerts (first 5):")
        for alert in engine.alerts[:5]:
            print(f"  [{alert.rule_name}] {alert.scope} {alert.key:#x}: "
                  f"{100 * alert.duplicate_rate:.0f}% duplicates over "
                  f"{alert.clicks} clicks")
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    gbf = plan_gbf_for_target(args.window, args.subwindows, args.target_fp)
    tbf = plan_tbf_for_target(args.window, args.target_fp)
    rows = [
        [
            f"GBF (jumping, Q={args.subwindows})",
            f"{gbf.total_memory_bits / 8 / 1024:.1f} KiB",
            gbf.num_hashes,
            f"{gbf.predicted_fp:.2e}",
        ],
        [
            "TBF (sliding)",
            f"{tbf.total_memory_bits / 8 / 1024:.1f} KiB",
            tbf.num_hashes,
            f"{tbf.predicted_fp:.2e}",
        ],
    ]
    print(render_table(
        ["detector", "memory", "k", "predicted FP"],
        rows,
        title=f"Plans for N = {args.window}, target FP = {args.target_fp}",
    ))
    return 0


def _command_tune(args: argparse.Namespace) -> int:
    """``repro tune``: portfolio comparison + controller suggestion."""
    from .adaptive import plan_apbf_for_target, plan_tlbf_for_target
    from .bloom.params import apbf_false_positive_rate

    window = args.window - args.window % args.subwindows
    gbf = plan_gbf_for_target(window, args.subwindows, args.target_fp)
    tbf = plan_tbf_for_target(args.window, args.target_fp)
    apbf = plan_apbf_for_target(args.window, args.target_fp)
    tlbf = plan_tlbf_for_target(args.window, args.resolution, args.target_fp)

    apbf_bits = (apbf.num_required + apbf.num_aged) * apbf.slice_bits
    tlbf_bits = (tlbf.num_required + tlbf.num_aged) * tlbf.slice_bits
    rows = [
        [
            f"GBF (jumping, Q={args.subwindows})",
            f"{gbf.total_memory_bits / 8 / 1024:.1f} KiB",
            f"{gbf.total_memory_bits / window:.1f}",
            gbf.num_hashes,
            f"{gbf.predicted_fp:.2e}",
        ],
        [
            "TBF (sliding)",
            f"{tbf.total_memory_bits / 8 / 1024:.1f} KiB",
            f"{tbf.total_memory_bits / args.window:.1f}",
            tbf.num_hashes,
            f"{tbf.predicted_fp:.2e}",
        ],
        [
            f"APBF (sliding, k={apbf.num_required}, l={apbf.num_aged})",
            f"{apbf_bits / 8 / 1024:.1f} KiB",
            f"{apbf_bits / args.window:.1f}",
            apbf.num_required + apbf.num_aged,
            f"{apbf_false_positive_rate(apbf.num_required, apbf.num_aged, apbf.slice_bits, apbf.generation_size):.2e}",
        ],
        [
            f"TLBF (time-sliced, l={tlbf.num_aged})",
            f"{tlbf_bits / 8 / 1024:.1f} KiB",
            f"{tlbf_bits / args.window:.1f}",
            tlbf.num_required + tlbf.num_aged,
            f"{apbf_false_positive_rate(tlbf.num_required, tlbf.num_aged, tlbf.slice_bits, max(1, args.window // args.resolution)):.2e} *",
        ],
    ]
    print(render_table(
        ["detector", "memory", "bits/click", "k", "design FP"],
        rows,
        title=f"Portfolio at N = {args.window}, target FP = {args.target_fp}",
    ))
    print("* at the design load; time-based filters have no a-priori bound")
    print()
    print("adaptive serving (grows 2x after 3 breached samples, shrinks 0.5x")
    print("after 24 idle ones, 8-sample cooldown):")
    print(f"  repro serve --algorithm apbf --window {args.window} "
          f"--target-fp {args.target_fp} --adaptive-interval 64")
    return 0


def _command_monitor(args: argparse.Namespace) -> int:
    if args.cluster is not None:
        return _monitor_cluster(args.cluster)
    if args.input is None:
        print("error: an input stream file is required without --cluster",
              file=sys.stderr)
        return 2
    clicks = load_clicks(args.input)
    detector, _ = _detector_from_args(args)

    session = TelemetrySession(snapshot_every=args.every)
    session.on_snapshot(
        lambda snapshot: print(render_dashboard(snapshot, title=args.algorithm))
    )
    pipeline = DetectionPipeline(detector, telemetry=session)
    result = pipeline.run_batch(clicks, chunk_size=max(1, args.chunk_size))

    # Final snapshot so short streams still render at least one dashboard.
    session.emit()
    print(f"\n{result.processed} clicks; {result.duplicates} duplicates "
          f"({100 * result.duplicate_rate:.2f}%)")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(session.tracer.to_json())
        print(f"wrote {len(session.tracer.spans())} spans to {args.trace_out}")
    if args.prometheus:
        print()
        print(session.registry.to_prometheus(), end="")
    return 0


def _monitor_cluster(state_dir: str) -> int:
    """``repro monitor --cluster DIR``: the fleet-wide dashboard.

    Renders the merged telemetry the drain manifest captured — the
    router's registry plus every node's — one dashboard per component,
    with the assignment and per-node totals up top.
    """
    from .cluster import read_manifest

    manifest = read_manifest(state_dir)
    if manifest is None:
        print(f"error: no cluster manifest under {state_dir} "
              "(drain a `repro cluster run` first)", file=sys.stderr)
        return 1
    totals = manifest.get("totals", {})
    print(f"cluster: {len(manifest.get('nodes', []))} nodes x "
          f"{manifest.get('total_shards')} shards; "
          f"{totals.get('clicks', 0)} clicks in "
          f"{totals.get('batches', 0)} batches routed")
    for record in manifest.get("nodes", []):
        print(f"  {record['name']}: shards {record['shards']}  "
              f"{record['processed_clicks']} clicks  "
              f"({record['checkpoint_dir']})")
    telemetry = manifest.get("telemetry") or {}
    router_snapshot = telemetry.get("router")
    if router_snapshot:
        print(render_dashboard(router_snapshot, title="router"))
    for name, node in sorted((telemetry.get("nodes") or {}).items()):
        snapshot = node.get("metrics")
        if snapshot:
            print(render_dashboard(snapshot, title=name))
    return 0


def _command_cluster(args: argparse.Namespace) -> int:
    """``repro cluster run|rebalance`` (docs/operations.md §8 runbook)."""
    if args.cluster_command == "rebalance":
        from .cluster import rebalance_checkpoints

        manifest = rebalance_checkpoints(args.state_dir, args.nodes)
        print(f"rebalanced to {args.nodes} nodes x "
              f"{manifest['total_shards']} shards")
        for record in manifest["nodes"]:
            print(f"  {record['name']}: shards {record['shards']}")
        return 0

    import signal
    import threading

    from .cluster import ClusterConfig, LocalCluster

    spec = DetectorSpec(
        algorithm="tbf",
        window=WindowSpec("sliding", args.window, 1),
        seed=args.seed,
        shards=args.shards,
        target_fp=args.target_fp,
    )
    config = ClusterConfig(
        host=args.host, port=args.port, total_shards=args.shards
    )
    cluster = LocalCluster(
        lambda: create_detector(spec),
        nodes=args.nodes,
        state_dir=args.state_dir,
        config=config,
        telemetry=True,
    ).start()
    ports = ", ".join(
        f"node-{index}:{cluster._ports[index]}" for index in range(args.nodes)
    )
    print(f"cluster: {args.nodes} nodes x {args.shards} shards "
          f"(tbf, window {args.window}) routing on "
          f"{args.host}:{cluster.port}  [{ports}]", flush=True)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda _s, _f: stop.set())
    stop.wait()
    manifest = cluster.drain()
    totals = manifest["totals"] if manifest else {}
    print(f"drained: {totals.get('clicks', 0)} clicks in "
          f"{totals.get('batches', 0)} batches; manifest journaled under "
          f"{args.state_dir}/manifest")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the network ingest server, drained on SIGTERM."""
    import asyncio
    import signal

    from .resilience import DeadLetterSink
    from .serve import ClickIngestServer, ServeConfig

    if args.workers > 1 and args.algorithm != "tbf":
        print(f"error: --workers requires --algorithm tbf "
              f"(got {args.algorithm!r})", file=sys.stderr)
        return 2
    if args.adaptive_interval > 0 and args.workers > 1:
        print("error: --adaptive-interval needs the inline engine "
              "(drop --workers)", file=sys.stderr)
        return 2
    adaptive_config = None
    if args.adaptive_interval > 0 and args.adaptive_target_fp is not None:
        from .adaptive import ControllerConfig

        adaptive_config = ControllerConfig(target_fp=args.adaptive_target_fp)
    spec = _spec_from_args(args, shards=max(1, args.workers))
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=max(1, args.max_batch),
        max_delay=max(0.0, args.max_delay_ms) / 1000.0,
        workers=args.workers if args.workers > 1 else None,
        max_inflight_bytes=int(args.max_inflight_mib * 1024 * 1024),
        checkpoint_dir=args.checkpoint_dir,
        skew_tolerance=max(0.0, args.skew_tolerance),
        trace_dir=args.trace_dir,
        flight_dir=args.flight_dir,
        adaptive_interval=max(0, args.adaptive_interval),
        adaptive=adaptive_config,
    )
    session = TelemetrySession()
    dead_letters = DeadLetterSink()

    def _build_detector():
        if args.adaptive_interval > 0:
            from .adaptive import AdaptiveDetector

            return AdaptiveDetector(spec)
        return create_detector(spec)

    async def _serve_main() -> ClickIngestServer:
        # Constructed inside the running loop: the server binds its
        # asyncio primitives at construction time.
        server = ClickIngestServer(
            _build_detector(),
            config=config,
            telemetry=session,
            dead_letters=dead_letters,
        )
        await server.start()
        print(f"serving {args.algorithm} (window {spec.window.size}) "
              f"on {config.host}:{server.port}", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(server.drain())
            )
        await server.wait_drained()
        return server

    server = asyncio.run(_serve_main())
    print(f"drained: {server.processed_clicks} clicks classified, "
          f"{dead_letters.total} frames dead-lettered")
    if args.adaptive_interval > 0:
        events = server.resize_events
        detail = "; ".join(
            f"{e.direction} {e.old_memory_bits}->{e.new_memory_bits} bits"
            for e in events
        )
        print(f"adaptive: {len(events)} resizes"
              + (f" ({detail})" if detail else ""))
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    """``repro trace``: sample, merge, and dump a distributed trace.

    Default mode boots a self-contained serve deployment (sharded TBF
    across ``--workers`` processes), drives a sampled synthetic load
    through it, and merges every process's span shard — client, server,
    and workers — into one Chrome-trace timeline.  ``--merge-only``
    skips the run and merges shards an external deployment (``repro
    serve --trace-dir``) already wrote.
    """
    import tempfile

    from .serve import ServeConfig, ServerThread
    from .serve.client import _synthetic_batches, run_load
    from .telemetry import merge_shards
    from .telemetry.monitor import _latency_panel

    def _merge(directory: str) -> int:
        trace = merge_shards(directory, output=args.out)
        events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        pids = {e["pid"] for e in events}
        print(f"wrote {len(events)} spans from {len(pids)} processes "
              f"to {args.out}")
        return len(events)

    if args.merge_only:
        if args.trace_dir is None:
            print("error: --merge-only requires --trace-dir", file=sys.stderr)
            return 2
        _merge(args.trace_dir)
        return 0

    workers = max(2, args.workers)
    spec = DetectorSpec(
        algorithm="tbf",
        window=WindowSpec("sliding", args.window, 1),
        seed=args.seed,
        shards=workers,
        target_fp=0.001,
    )
    session = TelemetrySession()
    cleanup = None
    trace_dir = args.trace_dir
    if trace_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-trace-")
        trace_dir = cleanup.name
    try:
        config = ServeConfig(
            workers=workers,
            trace_dir=trace_dir,
            max_batch=max(1, args.batch) * 2,
            max_delay=0.002,
        )
        batches = _synthetic_batches(args.clicks, args.batch, args.seed, 0.2)
        with ServerThread(
            create_detector(spec), config=config, telemetry=session
        ) as thread:
            stats = run_load(
                "127.0.0.1",
                thread.port,
                batches,
                trace_dir=trace_dir,
                trace_sample=args.sample,
            )
            # Snapshot while the worker fleet is still up: detector
            # instruments poll the workers over their control rings.
            snapshot = session.emit() or {}
        count = _merge(trace_dir)
        if count == 0:
            print("error: no spans recorded (is --sample > 0?)",
                  file=sys.stderr)
            return 1
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    panel = _latency_panel(snapshot.get("gauges", []), "serve")
    if panel:
        print(panel)
    latency = stats["latency"]
    if latency is not None:
        print(f"client RTT p50={latency['p50_s'] * 1000:.2f}ms "
              f"p95={latency['p95_s'] * 1000:.2f}ms "
              f"p99={latency['p99_s'] * 1000:.2f}ms "
              f"max={latency['max_s'] * 1000:.2f}ms "
              f"over {latency['batches']} batches")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(session.registry.to_prometheus())
        print(f"wrote metrics exposition to {args.metrics_out}")
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: the exactly-once soak (docs/operations.md §6)."""
    from .chaos import SoakConfig, run_soak

    config = SoakConfig(
        clicks=args.clicks,
        batch=args.batch,
        seed=args.seed,
        timeout=args.timeout,
        retries=args.retries,
        drain_after=None if args.drain_after < 0 else args.drain_after,
        engine_fail_group=None if args.no_engine_faults else 2,
        engine_stall_group=None if args.no_engine_faults else 6,
        fail_first_checkpoint=not args.no_engine_faults,
        cluster_nodes=args.cluster_nodes,
    )
    report = run_soak(config, checkpoint_dir=args.checkpoint_dir)
    print(report.summary())
    return 0 if report.ok else 1


def _command_figures(args: argparse.Namespace) -> int:
    from .experiments import run_figure1, run_figure2a, run_figure2b

    if args.which in ("1", "all"):
        print(run_figure1(scale=args.scale, seed=args.seed).render())
    if args.which in ("2a", "all"):
        print(run_figure2a(scale=args.scale, seed=args.seed).render())
    if args.which in ("2b", "all"):
        print(run_figure2b(scale=args.scale, seed=args.seed).render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "detect": _command_detect,
        "plan": _command_plan,
        "tune": _command_tune,
        "figures": _command_figures,
        "monitor": _command_monitor,
        "serve": _command_serve,
        "trace": _command_trace,
        "chaos": _command_chaos,
        "cluster": _command_cluster,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
