"""Sharded duplicate detection: scaling one pass across workers.

An ICDCS-scale deployment processes clicks on many workers.  Duplicate
detection shards naturally: route every click by a hash of its
*identifier*, so all repeats of one identifier land on the same worker
and that worker's local sketch decides.  No cross-worker communication
is needed on the hot path — the defining advantage of
identifier-partitioned dedup.

Window semantics under sharding:

* **Time-based windows shard exactly.**  Every worker evaluates "did an
  identical click arrive in the last T seconds" against the global
  clock carried by the click, so the sharded verdicts equal a single
  detector's (tested against the exact labeler).
* **Count-based windows shard approximately.**  "The last N clicks" is
  a global notion, but a worker only counts its own arrivals, so each
  worker runs a window of ``N / S``.  With a balanced hash the local
  window expires identifiers after ~N global arrivals, with deviation
  proportional to the shard-load imbalance (measured by
  :meth:`ShardedDetector.load_imbalance`).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import ConfigurationError
from ..hashing.family import _splitmix64

_MASK64 = (1 << 64) - 1


def default_router(num_shards: int) -> Callable[[int], int]:
    """Stable identifier-to-shard router (splitmix64 of the identifier).

    Deliberately independent of every detector hash family in this
    library (different mixing constants path), so routing does not bias
    the per-shard filters.
    """

    def route(identifier: int) -> int:
        return _splitmix64((identifier ^ 0xA5A5A5A5A5A5A5A5) & _MASK64) % num_shards

    return route


class ShardedDetector:
    """Count-based sharded duplicate detector.

    Parameters
    ----------
    shards:
        One detector per worker, each configured with a window of
        ``global_window / len(shards)``.  Build them with
        :meth:`ShardedDetector.of_tbf` for the common case.
    router:
        Identifier -> shard index; defaults to :func:`default_router`.
    """

    def __init__(
        self,
        shards: List,
        router: Optional[Callable[[int], int]] = None,
    ) -> None:
        if not shards:
            raise ConfigurationError("need at least one shard")
        self.shards = list(shards)
        self.router = router or default_router(len(shards))
        self._per_shard_arrivals = [0] * len(shards)

    @classmethod
    def of_tbf(
        cls,
        global_window: int,
        num_shards: int,
        total_entries: int,
        num_hashes: int = 10,
        seed: int = 0,
    ) -> "ShardedDetector":
        """``num_shards`` TBFs, splitting window and memory evenly."""
        from ..core import TBFDetector

        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        local_window = max(1, global_window // num_shards)
        local_entries = max(1, total_entries // num_shards)
        shards = [
            TBFDetector(local_window, local_entries, num_hashes, seed=seed + shard)
            for shard in range(num_shards)
        ]
        return cls(shards)

    def process(self, identifier: int) -> bool:
        shard = self.router(identifier)
        self._per_shard_arrivals[shard] += 1
        return self.shards[shard].process(identifier)

    def query(self, identifier: int) -> bool:
        return self.shards[self.router(identifier)].query(identifier)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def memory_bits(self) -> int:
        return sum(shard.memory_bits for shard in self.shards)

    def load_imbalance(self) -> float:
        """Max shard load over mean shard load (1.0 = perfectly even)."""
        total = sum(self._per_shard_arrivals)
        if total == 0:
            return 1.0
        mean = total / len(self.shards)
        return max(self._per_shard_arrivals) / mean

    def shard_arrivals(self) -> List[int]:
        return list(self._per_shard_arrivals)


class TimeShardedDetector:
    """Time-based sharded duplicate detector (exact window semantics).

    Every shard runs a :class:`~repro.core.TimeBasedTBFDetector` over
    the *full* window duration; the global clock travels with each
    click, so sharding preserves the single-detector semantics exactly
    (up to the shared unit granularity).
    """

    def __init__(
        self,
        shards: List,
        router: Optional[Callable[[int], int]] = None,
    ) -> None:
        if not shards:
            raise ConfigurationError("need at least one shard")
        self.shards = list(shards)
        self.router = router or default_router(len(shards))

    @classmethod
    def of_tbf(
        cls,
        duration: float,
        resolution: int,
        num_shards: int,
        total_entries: int,
        num_hashes: int = 10,
        seed: int = 0,
    ) -> "TimeShardedDetector":
        from ..core import TimeBasedTBFDetector

        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        local_entries = max(1, total_entries // num_shards)
        shards = [
            TimeBasedTBFDetector(
                duration, resolution, local_entries, num_hashes, seed=seed + shard
            )
            for shard in range(num_shards)
        ]
        return cls(shards)

    def process_at(self, identifier: int, timestamp: float) -> bool:
        return self.shards[self.router(identifier)].process_at(identifier, timestamp)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def memory_bits(self) -> int:
        return sum(shard.memory_bits for shard in self.shards)
