"""Sharded duplicate detection: scaling one pass across workers.

An ICDCS-scale deployment processes clicks on many workers.  Duplicate
detection shards naturally: route every click by a hash of its
*identifier*, so all repeats of one identifier land on the same worker
and that worker's local sketch decides.  No cross-worker communication
is needed on the hot path — the defining advantage of
identifier-partitioned dedup.

Window semantics under sharding:

* **Time-based windows shard exactly.**  Every worker evaluates "did an
  identical click arrive in the last T seconds" against the global
  clock carried by the click, so the sharded verdicts equal a single
  detector's (tested against the exact labeler).
* **Count-based windows shard approximately.**  "The last N clicks" is
  a global notion, but a worker only counts its own arrivals, so each
  worker runs a window of ``N / S``.  With a balanced hash the local
  window expires identifiers after ~N global arrivals, with deviation
  proportional to the shard-load imbalance (measured by
  :meth:`ShardedDetector.load_imbalance`).

Failover semantics: a worker dies and its sketch is gone.  While the
shard rebuilds from its checkpoint (:meth:`checkpoint_shard` /
:meth:`restore_shard`) the operator picks an explicit policy for the
clicks routed to it — **fail-open** accepts everything (duplicates bill;
the attacker's window) or **fail-closed** rejects everything (no fraud
billed; legitimate revenue forfeited).  Neither is free, which is why
the choice is per-shard and the degraded window is surfaced in stats
rather than decided silently.
"""

from __future__ import annotations

import enum
import warnings
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..core.checkpoint import (
    CheckpointError,
    load_detector,
    pack_frame,
    register_checkpoint_kind,
    save_detector,
    unpack_frame,
)
from ..errors import ConfigurationError
from ..hashing.family import _splitmix64, splitmix64_batch

_MASK64 = (1 << 64) - 1


def default_router(num_shards: int) -> Callable[[int], int]:
    """Stable identifier-to-shard router (splitmix64 of the identifier).

    Deliberately independent of every detector hash family in this
    library (different mixing constants path), so routing does not bias
    the per-shard filters.
    """

    def route(identifier: int) -> int:
        return _splitmix64((identifier ^ 0xA5A5A5A5A5A5A5A5) & _MASK64) % num_shards

    return route


def route_batch(
    identifiers: "np.ndarray",
    num_shards: int,
    router: Optional[Callable[[int], int]] = None,
) -> "np.ndarray":
    """Shard index per identifier, vectorized for the default router.

    With ``router=None`` the numpy path replays :func:`default_router`
    exactly (:func:`~repro.hashing.family.splitmix64_batch` is
    bit-identical to the scalar finalizer); custom routers fall back to
    a Python loop.  Shared by the in-process sharded detectors and the
    multi-process router in :mod:`repro.parallel`.
    """
    if router is None:
        mixed = splitmix64_batch(identifiers ^ np.uint64(0xA5A5A5A5A5A5A5A5))
        return (mixed % np.uint64(num_shards)).astype(np.int64)
    return np.fromiter(
        (router(int(identifier)) for identifier in identifiers),
        dtype=np.int64,
        count=identifiers.shape[0],
    )


def _route_batch(detector, identifiers: "np.ndarray") -> "np.ndarray":
    return route_batch(
        identifiers,
        len(detector.shards),
        None if detector._router_is_default else detector.router,
    )


def shard_groups(shard_of: "np.ndarray"):
    """Yield ``(shard, positions)`` per shard with one stable argsort.

    ``positions`` are the original batch offsets in arrival order (the
    stable sort preserves it), so each shard sees exactly the
    subsequence the scalar loop would have fed it.
    """
    n = shard_of.shape[0]
    order = np.argsort(shard_of, kind="stable")
    sorted_shards = shard_of[order]
    boundaries = np.nonzero(sorted_shards[1:] != sorted_shards[:-1])[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    for group_start, group_end in zip(starts, ends):
        yield int(sorted_shards[group_start]), order[group_start:group_end]


class FailoverPolicy(enum.Enum):
    """What a degraded shard answers while its sketch is rebuilding.

    ``FAIL_OPEN`` accepts every click (verdict: not a duplicate) — no
    legitimate revenue is lost, but every duplicate routed to the shard
    bills.  ``FAIL_CLOSED`` rejects every click (verdict: duplicate) —
    no fraud bills, but every legitimate click's revenue is forfeited.
    """

    FAIL_OPEN = "fail-open"
    FAIL_CLOSED = "fail-closed"


class _ShardFailover:
    """Degraded-shard bookkeeping shared by both sharded detectors."""

    shards: List

    def _init_failover(self) -> None:
        #: shard index -> {"policy": FailoverPolicy, "clicks": int}
        self._degraded: Dict[int, Dict[str, object]] = {}
        self._failover_counter = None
        self._restore_counter = None

    def attach_telemetry(self, registry) -> None:
        """Route failover transitions through a metrics registry.

        Registers ``repro_shard_failovers_total{policy}`` and
        ``repro_shard_restores_total``.  Without a registry attached
        (the default) failover stays untouched — zero overhead.
        """
        self._failover_counter = registry.counter(
            "repro_shard_failovers_total",
            "Shards declared lost, by failover policy",
            labels=("policy",),
        )
        self._restore_counter = registry.counter(
            "repro_shard_restores_total",
            "Degraded shards rebuilt from a checkpoint",
        )

    def _check_shard_index(self, shard: int) -> None:
        if not 0 <= shard < len(self.shards):
            raise ConfigurationError(
                f"shard index {shard} out of range [0, {len(self.shards)})"
            )

    def checkpoint_shard(self, shard: int) -> bytes:
        """Snapshot one shard's sketch (see :func:`repro.core.save_detector`)."""
        self._check_shard_index(shard)
        return save_detector(self.shards[shard])

    def checkpoint_state(self) -> bytes:
        """Serialized fleet state (invert with :func:`repro.core.load_detector`).

        Part of the unified :class:`~repro.detection.api.Detector` /
        :class:`~repro.detection.api.TimedDetector` protocol; the blob
        holds every shard's frame plus the degraded-shard map.
        """
        return save_detector(self)

    def fail_shard(
        self, shard: int, policy: Union[FailoverPolicy, str] = FailoverPolicy.FAIL_CLOSED
    ) -> None:
        """Declare a shard's sketch lost; answer with ``policy`` until restored."""
        self._check_shard_index(shard)
        policy = FailoverPolicy(policy)
        self._degraded[shard] = {"policy": policy, "clicks": 0}
        if self._failover_counter is not None:
            self._failover_counter.labels(policy=policy.value).inc()

    def restore_shard(self, shard: int, blob: bytes) -> int:
        """Rebuild a shard from a checkpoint blob and end its degraded window.

        Returns the number of clicks answered by policy while degraded.
        The restored detector must be the same type as the shard it
        replaces — a mismatched sketch must never take over a route.
        """
        self._check_shard_index(shard)
        restored = load_detector(blob)
        current = self.shards[shard]
        if type(restored) is not type(current):
            raise CheckpointError(
                f"checkpoint holds a {type(restored).__name__}, shard {shard} "
                f"runs a {type(current).__name__}"
            )
        self.shards[shard] = restored
        entry = self._degraded.pop(shard, None)
        if self._restore_counter is not None:
            self._restore_counter.inc()
        return int(entry["clicks"]) if entry is not None else 0

    def degraded_shards(self) -> Dict[int, Dict[str, object]]:
        """Currently degraded shards: ``{shard: {"policy", "clicks"}}``."""
        return {
            shard: {"policy": entry["policy"].value, "clicks": entry["clicks"]}
            for shard, entry in self._degraded.items()
        }

    @property
    def is_degraded(self) -> bool:
        return bool(self._degraded)

    def _degraded_verdict(self, shard: int, count: bool = True) -> Optional[bool]:
        entry = self._degraded.get(shard)
        if entry is None:
            return None
        if count:
            entry["clicks"] = int(entry["clicks"]) + 1
        return entry["policy"] is FailoverPolicy.FAIL_CLOSED

    # -- telemetry ----------------------------------------------------

    def _shard_health(self) -> Dict[str, Dict[str, float]]:
        """Per-shard gauge map for the telemetry instrument."""
        health: Dict[str, Dict[str, float]] = {}
        for index, shard in enumerate(self.shards):
            snapshot = getattr(shard, "telemetry_snapshot", None)
            gauges = dict(snapshot().get("gauges", {})) if snapshot else {}
            gauges["degraded"] = 1.0 if index in self._degraded else 0.0
            health[str(index)] = gauges
        return health

    def _aggregate_telemetry(self) -> Dict[str, object]:
        """Fleet-wide rollup: totals plus the worst shard's FP estimate."""
        elements = 0
        duplicates = 0
        worst_fp = 0.0
        for shard in self.shards:
            elements += shard.counter.elements
            duplicates += getattr(shard, "duplicates", 0)
            estimate = getattr(shard, "estimated_fp_rate", None)
            if estimate is not None:
                worst_fp = max(worst_fp, estimate())
        return {
            "gauges": {
                "estimated_fp_rate": worst_fp,
                "observed_duplicate_rate": duplicates / elements if elements else 0.0,
                "degraded_shards": len(self._degraded),
            },
            "counters": {"elements": elements, "duplicates": duplicates},
            "shards": self._shard_health(),
        }

    def estimated_fp_rate(self) -> float:
        """Worst (maximum) live FP estimate across healthy shards."""
        worst = 0.0
        for shard in self.shards:
            estimate = getattr(shard, "estimated_fp_rate", None)
            if estimate is not None:
                worst = max(worst, estimate())
        return worst

    # -- checkpoint plumbing ------------------------------------------

    def _failover_header(self) -> Dict[str, Dict[str, object]]:
        return {
            str(shard): {"policy": entry["policy"].value, "clicks": entry["clicks"]}
            for shard, entry in self._degraded.items()
        }

    def _restore_failover(self, spec: Dict[str, Dict[str, object]]) -> None:
        self._degraded = {
            int(shard): {
                "policy": FailoverPolicy(entry["policy"]),
                "clicks": int(entry["clicks"]),
            }
            for shard, entry in spec.items()
        }


class ShardedDetector(_ShardFailover):
    """Count-based sharded duplicate detector.

    Parameters
    ----------
    shards:
        One detector per worker, each configured with a window of
        ``global_window / len(shards)``.  Build them with
        :meth:`ShardedDetector.of_tbf` for the common case.
    router:
        Identifier -> shard index; defaults to :func:`default_router`.
    """

    def __init__(
        self,
        shards: List,
        router: Optional[Callable[[int], int]] = None,
    ) -> None:
        if not shards:
            raise ConfigurationError("need at least one shard")
        self.shards = list(shards)
        self._router_is_default = router is None
        self.router = router or default_router(len(shards))
        self._per_shard_arrivals = [0] * len(shards)
        self._init_failover()

    @classmethod
    def of_tbf(
        cls,
        global_window: int,
        num_shards: int,
        total_entries: int,
        num_hashes: int = 10,
        seed: int = 0,
    ) -> "ShardedDetector":
        """``num_shards`` TBFs, splitting window and memory evenly.

        Deprecated: build through :func:`repro.detection.create_detector`
        with a sharded :class:`~repro.detection.DetectorSpec` instead —
        the spec surface covers every variant and round-trips via
        ``spec()``.
        """
        warnings.warn(
            "ShardedDetector.of_tbf is deprecated; build through "
            "create_detector(DetectorSpec('tbf', ..., shards=N))",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls._of_tbf(
            global_window, num_shards, total_entries, num_hashes, seed=seed
        )

    @classmethod
    def _of_tbf(
        cls,
        global_window: int,
        num_shards: int,
        total_entries: int,
        num_hashes: int = 10,
        seed: int = 0,
    ) -> "ShardedDetector":
        from ..core import TBFDetector

        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        local_window = max(1, global_window // num_shards)
        local_entries = max(1, total_entries // num_shards)
        shards = [
            TBFDetector(local_window, local_entries, num_hashes, seed=seed + shard)
            for shard in range(num_shards)
        ]
        return cls(shards)

    def process(self, identifier: int) -> bool:
        shard = self.router(identifier)
        self._per_shard_arrivals[shard] += 1
        verdict = self._degraded_verdict(shard)
        if verdict is not None:
            return verdict
        return self.shards[shard].process(identifier)

    def process_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        """Process a batch, partitioned across shards with one argsort.

        Verdicts, per-shard state, arrival counts, and degraded-click
        tallies are identical to a scalar :meth:`process` loop: every
        shard receives its clicks in arrival order, and degraded shards
        answer by policy without touching their (lost) sketch.
        """
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        out = np.empty(identifiers.shape[0], dtype=bool)
        if identifiers.shape[0] == 0:
            return out
        for shard, positions in shard_groups(_route_batch(self, identifiers)):
            count = int(positions.shape[0])
            self._per_shard_arrivals[shard] += count
            entry = self._degraded.get(shard)
            if entry is not None:
                entry["clicks"] = int(entry["clicks"]) + count
                out[positions] = entry["policy"] is FailoverPolicy.FAIL_CLOSED
                continue
            detector = self.shards[shard]
            batch = getattr(detector, "process_batch", None)
            if batch is not None:
                out[positions] = batch(identifiers[positions])
            else:
                process = detector.process
                out[positions] = [
                    process(int(identifier)) for identifier in identifiers[positions]
                ]
        return out

    def query(self, identifier: int) -> bool:
        shard = self.router(identifier)
        verdict = self._degraded_verdict(shard, count=False)
        if verdict is not None:
            return verdict
        return self.shards[shard].query(identifier)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def memory_bits(self) -> int:
        return sum(shard.memory_bits for shard in self.shards)

    def load_imbalance(self) -> float:
        """Max shard load over mean shard load (1.0 = perfectly even)."""
        total = sum(self._per_shard_arrivals)
        if total == 0:
            return 1.0
        mean = total / len(self.shards)
        return max(self._per_shard_arrivals) / mean

    def shard_arrivals(self) -> List[int]:
        return list(self._per_shard_arrivals)

    def telemetry_snapshot(self) -> Dict[str, object]:
        """Fleet health metrics for :mod:`repro.telemetry.instruments`."""
        snapshot = self._aggregate_telemetry()
        snapshot["gauges"]["load_imbalance"] = self.load_imbalance()
        return snapshot

    def spec(self):
        """One :class:`~repro.detection.DetectorSpec` rebuilding the fleet.

        Requires a homogeneous fleet (same shard configuration with
        sequential per-shard seeds) behind the default router — exactly
        what the spec path builds.
        """
        return _combined_spec(self)


class TimeShardedDetector(_ShardFailover):
    """Time-based sharded duplicate detector (exact window semantics).

    Every shard runs a :class:`~repro.core.TimeBasedTBFDetector` over
    the *full* window duration; the global clock travels with each
    click, so sharding preserves the single-detector semantics exactly
    (up to the shared unit granularity).
    """

    def __init__(
        self,
        shards: List,
        router: Optional[Callable[[int], int]] = None,
    ) -> None:
        if not shards:
            raise ConfigurationError("need at least one shard")
        self.shards = list(shards)
        self._router_is_default = router is None
        self.router = router or default_router(len(shards))
        self._init_failover()

    @classmethod
    def of_tbf(
        cls,
        duration: float,
        resolution: int,
        num_shards: int,
        total_entries: int,
        num_hashes: int = 10,
        seed: int = 0,
    ) -> "TimeShardedDetector":
        """Deprecated: build through :func:`repro.detection.create_detector`
        with a sharded time-based :class:`~repro.detection.DetectorSpec`."""
        warnings.warn(
            "TimeShardedDetector.of_tbf is deprecated; build through "
            "create_detector(DetectorSpec('tbf-time', ..., shards=N))",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls._of_tbf(
            duration, resolution, num_shards, total_entries, num_hashes, seed=seed
        )

    @classmethod
    def _of_tbf(
        cls,
        duration: float,
        resolution: int,
        num_shards: int,
        total_entries: int,
        num_hashes: int = 10,
        seed: int = 0,
    ) -> "TimeShardedDetector":
        from ..core import TimeBasedTBFDetector

        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        local_entries = max(1, total_entries // num_shards)
        shards = [
            TimeBasedTBFDetector(
                duration, resolution, local_entries, num_hashes, seed=seed + shard
            )
            for shard in range(num_shards)
        ]
        return cls(shards)

    def process_at(self, identifier: int, timestamp: float) -> bool:
        shard = self.router(identifier)
        verdict = self._degraded_verdict(shard)
        if verdict is not None:
            return verdict
        return self.shards[shard].process_at(identifier, timestamp)

    def process_batch_at(
        self, identifiers: "np.ndarray", timestamps: "np.ndarray"
    ) -> "np.ndarray":
        """Batch variant of :meth:`process_at` (one argsort partition).

        Equivalent to the scalar loop for non-decreasing timestamps
        (each shard sees its subsequence in arrival order).  A
        regressing timestamp raises from the owning shard; unlike the
        scalar loop, sibling shards may have advanced past it by then —
        keep streams time-ordered, as the window semantics require.
        """
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        if timestamps.shape != identifiers.shape:
            raise ValueError(
                f"timestamps shape {timestamps.shape} != identifiers "
                f"shape {identifiers.shape}"
            )
        out = np.empty(identifiers.shape[0], dtype=bool)
        if identifiers.shape[0] == 0:
            return out
        for shard, positions in shard_groups(_route_batch(self, identifiers)):
            entry = self._degraded.get(shard)
            if entry is not None:
                entry["clicks"] = int(entry["clicks"]) + int(positions.shape[0])
                out[positions] = entry["policy"] is FailoverPolicy.FAIL_CLOSED
                continue
            detector = self.shards[shard]
            batch = getattr(detector, "process_batch_at", None)
            if batch is not None:
                out[positions] = batch(identifiers[positions], timestamps[positions])
            else:
                process_at = detector.process_at
                out[positions] = [
                    process_at(int(identifier), float(timestamp))
                    for identifier, timestamp in zip(
                        identifiers[positions], timestamps[positions]
                    )
                ]
        return out

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def memory_bits(self) -> int:
        return sum(shard.memory_bits for shard in self.shards)

    def telemetry_snapshot(self) -> Dict[str, object]:
        """Fleet health metrics for :mod:`repro.telemetry.instruments`."""
        return self._aggregate_telemetry()

    def spec(self):
        """One :class:`~repro.detection.DetectorSpec` rebuilding the fleet.

        Requires a homogeneous fleet (same shard configuration with
        sequential per-shard seeds) behind the default router — exactly
        what the spec path builds.
        """
        return _combined_spec(self)


def _combined_spec(detector):
    """One spec for a homogeneous shard fleet (inverse of the spec build).

    Per-shard specs carry local sizes; the combined spec multiplies the
    split quantities (window, TBF entries, slice bits, generation size)
    back up by the shard count so the factory's even split reproduces
    the fleet exactly.
    """
    from dataclasses import replace

    from .detector import APBFParams, TBFParams, TLBFParams, WindowSpec

    if not detector._router_is_default:
        raise ConfigurationError("spec() cannot express a custom router")
    shards = detector.shards
    n = len(shards)
    first = shards[0].spec()
    base_seed = first.seed
    for index, shard in enumerate(shards[1:], 1):
        other = shard.spec()
        if replace(other, seed=base_seed) != first or other.seed != base_seed + index:
            raise ConfigurationError(
                "spec() needs a homogeneous fleet with sequential per-shard "
                f"seeds; shard {index} differs from shard 0"
            )
    params = first.params
    if type(params) is TBFParams:
        default_slack = (
            first.resolution - 1
            if first.duration is not None
            else first.window.size - 1
        )
        if params.cleanup_slack not in (None, default_slack):
            raise ConfigurationError(
                "spec() cannot express non-default per-shard cleanup_slack "
                f"({params.cleanup_slack})"
            )
        scaled = TBFParams(params.num_entries * n, params.num_hashes, None)
    elif type(params) is APBFParams:
        scaled = APBFParams(
            params.num_required,
            params.num_aged,
            params.slice_bits * n,
            params.generation_size * n,
        )
    elif type(params) is TLBFParams:
        scaled = TLBFParams(
            params.num_required, params.num_aged, params.slice_bits * n
        )
    else:
        raise ConfigurationError(
            f"spec() cannot shard-combine {type(params).__name__} params"
        )
    window = WindowSpec(
        first.window.kind, first.window.size * n, first.window.num_subwindows
    )
    return replace(first, window=window, params=scaled, shards=n)


# ----------------------------------------------------------------------
# Checkpoint kinds: a sharded detector serializes as its shards' frames
# concatenated, so SupervisedPipeline checkpoints sharded deployments
# exactly like single detectors.  Custom routers are closures and cannot
# round-trip; only the default router is accepted.
# ----------------------------------------------------------------------

def _save_shards(detector, kind: str, extra: Dict[str, object]) -> bytes:
    if not detector._router_is_default:
        raise CheckpointError(
            "cannot checkpoint a sharded detector with a custom router; "
            "checkpoint the shards individually with checkpoint_shard()"
        )
    blobs = [save_detector(shard) for shard in detector.shards]
    header = {
        "kind": kind,
        "lengths": [len(blob) for blob in blobs],
        "degraded": detector._failover_header(),
    }
    header.update(extra)
    return pack_frame(header, b"".join(blobs))


def _split_shard_blobs(header: Dict[str, object], payload: bytes) -> List[bytes]:
    try:
        lengths = [int(length) for length in header["lengths"]]
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"bad sharded checkpoint header: {error}") from error
    if sum(lengths) != len(payload):
        raise CheckpointError("sharded checkpoint payload size mismatch")
    blobs, offset = [], 0
    for length in lengths:
        blobs.append(payload[offset : offset + length])
        offset += length
    return blobs


def _save_sharded(detector: ShardedDetector) -> bytes:
    return _save_shards(
        detector, "sharded", {"per_shard_arrivals": detector._per_shard_arrivals}
    )


def _load_sharded(header: Dict[str, object], payload: bytes) -> ShardedDetector:
    blobs = _split_shard_blobs(header, payload)
    detector = ShardedDetector([load_detector(blob) for blob in blobs])
    arrivals = header.get("per_shard_arrivals")
    if not isinstance(arrivals, list) or len(arrivals) != len(blobs):
        raise CheckpointError("sharded checkpoint arrivals do not match shards")
    detector._per_shard_arrivals = [int(count) for count in arrivals]
    detector._restore_failover(header.get("degraded", {}))
    return detector


def _save_time_sharded(detector: TimeShardedDetector) -> bytes:
    return _save_shards(detector, "time-sharded", {})


def _load_time_sharded(header: Dict[str, object], payload: bytes) -> TimeShardedDetector:
    blobs = _split_shard_blobs(header, payload)
    detector = TimeShardedDetector([load_detector(blob) for blob in blobs])
    detector._restore_failover(header.get("degraded", {}))
    return detector


register_checkpoint_kind("sharded", ShardedDetector, _save_sharded, _load_sharded)
register_checkpoint_kind(
    "time-sharded", TimeShardedDetector, _save_time_sharded, _load_time_sharded
)

# unpack_frame is re-exported for tools that inspect shard blobs directly.
__all__ = [
    "default_router",
    "route_batch",
    "shard_groups",
    "FailoverPolicy",
    "ShardedDetector",
    "TimeShardedDetector",
    "unpack_frame",
]
