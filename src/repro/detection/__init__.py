"""High-level detection: unified protocol + factory, pipeline, scoring, alerting."""

from .alerts import Alert, AlertEngine, AlertRule, default_rules
from .api import (
    Detector,
    DetectorLifecycle,
    LifecycleAdapter,
    TimedAdapter,
    TimedDetector,
    as_lifecycle,
    is_timed,
    wrap_timed,
)
from .coalitions import CoalitionDetector, CoalitionPair, MinHashSignature
from .detector import (
    ALGORITHMS,
    PARAMS_TYPES,
    SHARDABLE_ALGORITHMS,
    TIME_BASED_ALGORITHMS,
    APBFParams,
    DetectorSpec,
    GBFParams,
    TBFParams,
    TLBFParams,
    WindowSpec,
    create_detector,
)
from .heavy_hitters import HeavyHitter, SkewMonitor, SpaceSaving
from .pipeline import DetectionPipeline, PipelineResult, classify_stream
from .quality import ClickQualityTracker, QualityConfig
from .scoring import SourceScoreboard, SourceStats
from .sharded import (
    FailoverPolicy,
    ShardedDetector,
    TimeShardedDetector,
    default_router,
)

__all__ = [
    # The blessed public surface: protocol + spec + factory first.
    "Detector",
    "TimedDetector",
    "TimedAdapter",
    "wrap_timed",
    "is_timed",
    "DetectorSpec",
    "WindowSpec",
    "create_detector",
    "GBFParams",
    "TBFParams",
    "APBFParams",
    "TLBFParams",
    "PARAMS_TYPES",
    "ALGORITHMS",
    "TIME_BASED_ALGORITHMS",
    "SHARDABLE_ALGORITHMS",
    "DetectorLifecycle",
    "LifecycleAdapter",
    "as_lifecycle",
    # Pipelines and sharding.
    "DetectionPipeline",
    "PipelineResult",
    "classify_stream",
    "ShardedDetector",
    "TimeShardedDetector",
    "FailoverPolicy",
    "default_router",
    # Scoring, quality, alerting, coalition analysis.
    "SourceScoreboard",
    "SourceStats",
    "ClickQualityTracker",
    "QualityConfig",
    "SpaceSaving",
    "SkewMonitor",
    "HeavyHitter",
    "CoalitionDetector",
    "CoalitionPair",
    "MinHashSignature",
    "AlertEngine",
    "AlertRule",
    "Alert",
    "default_rules",
]
