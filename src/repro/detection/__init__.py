"""High-level detection: unified factory, pipeline, scoring, alerting."""

from .alerts import Alert, AlertEngine, AlertRule, default_rules
from .coalitions import CoalitionDetector, CoalitionPair, MinHashSignature
from .detector import ALGORITHMS, WindowSpec, create_detector
from .heavy_hitters import HeavyHitter, SkewMonitor, SpaceSaving
from .pipeline import DetectionPipeline, PipelineResult, classify_stream
from .quality import ClickQualityTracker, QualityConfig
from .scoring import SourceScoreboard, SourceStats
from .sharded import (
    FailoverPolicy,
    ShardedDetector,
    TimeShardedDetector,
    default_router,
)

__all__ = [
    "ShardedDetector",
    "TimeShardedDetector",
    "FailoverPolicy",
    "default_router",
    "ClickQualityTracker",
    "QualityConfig",
    "SpaceSaving",
    "SkewMonitor",
    "HeavyHitter",
    "CoalitionDetector",
    "CoalitionPair",
    "MinHashSignature",
    "create_detector",
    "WindowSpec",
    "ALGORITHMS",
    "DetectionPipeline",
    "PipelineResult",
    "classify_stream",
    "SourceScoreboard",
    "SourceStats",
    "AlertEngine",
    "AlertRule",
    "Alert",
    "default_rules",
]
