"""Coalition detection: sources that click suspiciously alike.

The paper's related work (§2.4) cites Metwally et al.'s
*Similarity-Seeker* [20]: fraudsters distribute their clicking across
many identities, so no single identity looks hot — but the identities
betray themselves by clicking the *same set of ads*.  Coalition
detection finds pairs/groups of sources with abnormally similar click
sets.

Exact pairwise Jaccard over all sources is quadratic in sources and
linear in history; the streaming-scale approach is **MinHash**
(Broder): per source, keep ``num_hashes`` running minima of hashed ad
ids.  The fraction of matching minima between two sources is an
unbiased estimate of the Jaccard similarity of their ad sets, in
``O(num_hashes)`` space per source and ``O(num_hashes)`` time per
comparison.

:class:`CoalitionDetector` maintains signatures per source, prunes to
the busiest sources (Space-Saving), and reports high-similarity pairs
and their connected components as coalition candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..errors import ConfigurationError
from ..hashing import derive_constants
from ..streams.click import Click
from .heavy_hitters import SpaceSaving

_MASK64 = (1 << 64) - 1
_C1 = 0xBF58476D1CE4E5B9
_C2 = 0x94D049BB133111EB


def _mix(value: int) -> int:
    value &= _MASK64
    value = ((value ^ (value >> 30)) * _C1) & _MASK64
    value = ((value ^ (value >> 27)) * _C2) & _MASK64
    return value ^ (value >> 31)


class MinHashSignature:
    """Running MinHash of a growing set, ``num_hashes`` permutations."""

    __slots__ = ("_minima", "_salts", "items_observed")

    def __init__(self, salts: List[int]) -> None:
        self._salts = salts
        self._minima = [_MASK64] * len(salts)
        self.items_observed = 0

    def observe(self, item: int) -> None:
        self.items_observed += 1
        minima = self._minima
        for index, salt in enumerate(self._salts):
            hashed = _mix(item ^ salt)
            if hashed < minima[index]:
                minima[index] = hashed

    def similarity(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity of the two underlying sets."""
        matches = sum(
            mine == theirs and mine != _MASK64
            for mine, theirs in zip(self._minima, other._minima)
        )
        return matches / len(self._minima)

    @property
    def memory_bits(self) -> int:
        return 64 * len(self._minima)


@dataclass(frozen=True)
class CoalitionPair:
    """Two sources whose ad sets look suspiciously similar."""

    source_a: int
    source_b: int
    similarity: float
    clicks_a: int
    clicks_b: int


class CoalitionDetector:
    """Streaming coalition detection over (source, ad) click events.

    Parameters
    ----------
    num_hashes:
        MinHash permutations per source (estimation std is
        ``~sqrt(J(1-J)/num_hashes)``).
    max_sources:
        Signatures are kept only for the busiest ``max_sources`` sources
        (Space-Saving prunes the long tail — a source too quiet to be
        monitored cannot be a useful coalition member anyway).
    min_clicks:
        Sources below this click count are excluded from reports (their
        signatures are too immature to compare).
    """

    def __init__(
        self,
        num_hashes: int = 64,
        max_sources: int = 1024,
        min_clicks: int = 10,
        seed: int = 0,
    ) -> None:
        if num_hashes < 1:
            raise ConfigurationError(f"num_hashes must be >= 1, got {num_hashes}")
        if max_sources < 2:
            raise ConfigurationError(f"max_sources must be >= 2, got {max_sources}")
        if min_clicks < 1:
            raise ConfigurationError(f"min_clicks must be >= 1, got {min_clicks}")
        self.num_hashes = num_hashes
        self.max_sources = max_sources
        self.min_clicks = min_clicks
        self._salts = derive_constants(seed ^ 0xC0A1, num_hashes)
        self._signatures: Dict[int, MinHashSignature] = {}
        self._volume = SpaceSaving(max_sources)

    def observe(self, source: int, ad_id: int) -> None:
        """Record that ``source`` clicked ``ad_id``."""
        self._volume.observe(source)
        signature = self._signatures.get(source)
        if signature is None:
            if len(self._signatures) >= self.max_sources:
                self._prune()
                if len(self._signatures) >= self.max_sources:
                    return  # source too quiet to monitor right now
            signature = MinHashSignature(self._salts)
            self._signatures[source] = signature
        signature.observe(ad_id)

    def observe_click(self, click: Click) -> None:
        self.observe(click.source_ip, click.ad_id)

    def _prune(self) -> None:
        """Keep signatures only for sources the volume summary monitors."""
        monitored = {
            hitter.element for hitter in self._volume.top(self.max_sources)
        }
        self._signatures = {
            source: signature
            for source, signature in self._signatures.items()
            if source in monitored
        }

    def similar_pairs(self, threshold: float = 0.7) -> List[CoalitionPair]:
        """All monitored source pairs with estimated Jaccard >= threshold."""
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
        eligible = [
            (source, signature)
            for source, signature in self._signatures.items()
            if signature.items_observed >= self.min_clicks
        ]
        pairs: List[CoalitionPair] = []
        for index, (source_a, signature_a) in enumerate(eligible):
            for source_b, signature_b in eligible[index + 1 :]:
                similarity = signature_a.similarity(signature_b)
                if similarity >= threshold:
                    pairs.append(
                        CoalitionPair(
                            source_a=min(source_a, source_b),
                            source_b=max(source_a, source_b),
                            similarity=similarity,
                            clicks_a=signature_a.items_observed,
                            clicks_b=signature_b.items_observed,
                        )
                    )
        pairs.sort(key=lambda pair: -pair.similarity)
        return pairs

    def coalitions(self, threshold: float = 0.7) -> List[Set[int]]:
        """Connected components of the similarity graph (size >= 2)."""
        pairs = self.similar_pairs(threshold)
        parent: Dict[int, int] = {}

        def find(node: int) -> int:
            parent.setdefault(node, node)
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for pair in pairs:
            root_a, root_b = find(pair.source_a), find(pair.source_b)
            if root_a != root_b:
                parent[root_a] = root_b
        groups: Dict[int, Set[int]] = {}
        for node in parent:
            groups.setdefault(find(node), set()).add(node)
        return sorted(
            (members for members in groups.values() if len(members) >= 2),
            key=lambda members: (-len(members), min(members)),
        )

    @property
    def memory_bits(self) -> int:
        signature_bits = sum(
            signature.memory_bits for signature in self._signatures.values()
        )
        return signature_bits + self._volume.memory_bits
