"""Unified construction of duplicate-click detectors.

One factory, every algorithm in the library, with auto-sizing: describe
the detector you need as a :class:`DetectorSpec` — window shape plus
either explicit filter parameters or a memory budget / FP target — and
:func:`create_detector` returns a ready detector satisfying the
:class:`~repro.detection.api.Detector` /
:class:`~repro.detection.api.TimedDetector` protocol.

The spec covers all seven runtime variants from one surface::

    create_detector(DetectorSpec("gbf", WindowSpec("jumping", 4096, 8),
                                 target_fp=1e-3))
    create_detector(DetectorSpec("tbf-time", WindowSpec("sliding", 4096),
                                 duration=60.0, resolution=64,
                                 memory_bits=1 << 18))
    create_detector(DetectorSpec("tbf", WindowSpec("sliding", 65536),
                                 target_fp=1e-3, shards=4))
    create_detector(DetectorSpec("tbf", WindowSpec("sliding", 65536),
                                 target_fp=1e-3, shards=4,
                                 engine="parallel"))

For time-based algorithms (``gbf-time`` / ``tbf-time``) the window spec
sizes the sketch — ``window.size`` is the expected number of arrivals
per window — while ``duration`` sets the wall-clock window length the
detector actually enforces.

The pre-spec calling convention ``create_detector(algorithm, window,
memory_bits=..., ...)`` still works but is deprecated: it emits a
:class:`DeprecationWarning` and forwards to the spec path.  See the
README migration note.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from ..analysis.sizing import (
    plan_gbf_for_target,
    plan_gbf_from_memory,
    plan_tbf_for_target,
    plan_tbf_from_memory,
)
from ..baselines import (
    ExactDetector,
    LandmarkBloomDetector,
    MetwallyCBFDetector,
    NaiveSubwindowBloomDetector,
    StableBloomDetector,
)
from ..core import (
    GBFDetector,
    TBFDetector,
    TBFJumpingDetector,
    TimeBasedGBFDetector,
    TimeBasedTBFDetector,
)
from ..errors import ConfigurationError

ALGORITHMS = (
    "gbf",
    "gbf-time",
    "tbf",
    "tbf-time",
    "tbf-jumping",
    "apbf",
    "time-limited-bf",
    "exact",
    "landmark-bloom",
    "naive-bloom",
    "metwally-cbf",
    "stable-bloom",
)

#: Algorithms driven by an explicit clock (``process_at`` surface).
TIME_BASED_ALGORITHMS = ("gbf-time", "tbf-time", "time-limited-bf")

#: Algorithms that can be hash-partitioned across shards / workers.
SHARDABLE_ALGORITHMS = ("tbf", "tbf-time", "apbf", "time-limited-bf")

ENGINES = ("inline", "parallel")


@dataclass(frozen=True)
class GBFParams:
    """Exact GBF filter parameters (``gbf`` / ``gbf-time``)."""

    bits_per_filter: int
    num_hashes: int


@dataclass(frozen=True)
class TBFParams:
    """Exact TBF parameters (``tbf`` / ``tbf-time`` / ``tbf-jumping``).

    ``num_entries`` is the *total* across shards when the spec shards.
    """

    num_entries: int
    num_hashes: int
    cleanup_slack: Optional[int] = None


@dataclass(frozen=True)
class APBFParams:
    """Exact Age-Partitioned BF parameters (``apbf``).

    ``slice_bits`` and ``generation_size`` are totals across shards
    when the spec shards.
    """

    num_required: int
    num_aged: int
    slice_bits: int
    generation_size: int


@dataclass(frozen=True)
class TLBFParams:
    """Exact time-limited-BF parameters (``time-limited-bf``).

    ``slice_bits`` is the total across shards when the spec shards;
    the aging resolution rides on ``DetectorSpec.resolution`` (slices
    retired per ``duration``).
    """

    num_required: int
    num_aged: int
    slice_bits: int


#: Which exact-parameter dataclass each algorithm accepts.
PARAMS_TYPES = {
    "gbf": GBFParams,
    "gbf-time": GBFParams,
    "tbf": TBFParams,
    "tbf-time": TBFParams,
    "tbf-jumping": TBFParams,
    "apbf": APBFParams,
    "time-limited-bf": TLBFParams,
}


@dataclass(frozen=True)
class WindowSpec:
    """A decaying-window requirement.

    ``kind`` is ``"sliding"``, ``"jumping"`` or ``"landmark"``;
    ``num_subwindows`` applies to jumping windows only.
    """

    kind: str
    size: int
    num_subwindows: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("sliding", "jumping", "landmark"):
            raise ConfigurationError(f"unknown window kind {self.kind!r}")
        if self.size < 1:
            raise ConfigurationError(f"window size must be >= 1, got {self.size}")
        if self.kind == "jumping":
            if self.num_subwindows < 1:
                raise ConfigurationError(
                    f"num_subwindows must be >= 1, got {self.num_subwindows}"
                )
            if self.size % self.num_subwindows != 0:
                raise ConfigurationError(
                    f"window size {self.size} not divisible by "
                    f"{self.num_subwindows} sub-windows"
                )


@dataclass(frozen=True)
class DetectorSpec:
    """Everything :func:`create_detector` needs, in one value.

    Parameters
    ----------
    algorithm:
        One of :data:`ALGORITHMS`.
    window:
        The :class:`WindowSpec`.  For time-based algorithms this sizes
        the sketch (``window.size`` = expected arrivals per window);
        ``duration`` sets the enforced wall-clock length.
    memory_bits / target_fp:
        Exactly one sizes the sketch (``exact`` needs neither).
    num_hashes:
        Overrides the auto-chosen optimum ``k``.
    seed:
        Hash-family seed; shards derive per-shard seeds from it.
    duration:
        Wall-clock window length; required for ``gbf-time``/``tbf-time``.
    resolution:
        Time units per window (``tbf-time``) or cleaning units per
        sub-window (``gbf-time``).
    shards:
        Hash-partition the detector across this many shards (> 1 needs
        a :data:`SHARDABLE_ALGORITHMS` member); memory splits evenly.
    engine:
        ``"inline"`` (default) runs shards in-process; ``"parallel"``
        runs one worker process per shard over shared-memory rings
        (:mod:`repro.parallel`).
    params:
        Exact filter parameters (the matching :data:`PARAMS_TYPES`
        dataclass), bypassing auto-sizing entirely.  Mutually exclusive
        with ``memory_bits`` / ``target_fp`` / ``num_hashes``; the
        window is then descriptive rather than sizing.  This is what
        every detector's ``spec()`` method emits, so
        ``create_detector(detector.spec())`` rebuilds the identical
        configuration — the resize primitive of
        :mod:`repro.adaptive.controller`.
    """

    algorithm: str
    window: Optional[WindowSpec] = None
    memory_bits: Optional[int] = None
    target_fp: Optional[float] = None
    num_hashes: Optional[int] = None
    seed: int = 0
    duration: Optional[float] = None
    resolution: int = 16
    shards: int = 1
    engine: str = "inline"
    params: Optional[object] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; choose from {ALGORITHMS}"
            )
        if self.window is None:
            raise ConfigurationError(
                f"{self.algorithm} needs a WindowSpec (for time-based "
                "algorithms it sizes the sketch)"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.resolution < 1:
            raise ConfigurationError(
                f"resolution must be >= 1, got {self.resolution}"
            )
        sharded = self.shards > 1 or self.engine == "parallel"
        if sharded and self.algorithm not in SHARDABLE_ALGORITHMS:
            raise ConfigurationError(
                f"{self.algorithm} cannot shard; sharding supports "
                f"{SHARDABLE_ALGORITHMS}"
            )
        if self.algorithm in TIME_BASED_ALGORITHMS:
            if self.duration is None or self.duration <= 0:
                raise ConfigurationError(
                    f"{self.algorithm} needs duration > 0 (wall-clock window "
                    f"length), got {self.duration}"
                )
        elif self.duration is not None:
            raise ConfigurationError(
                f"{self.algorithm} is count-based; duration does not apply"
            )
        if self.params is not None:
            expected = PARAMS_TYPES.get(self.algorithm)
            if expected is None:
                raise ConfigurationError(
                    f"{self.algorithm} does not take exact params"
                )
            if type(self.params) is not expected:
                raise ConfigurationError(
                    f"{self.algorithm} params must be {expected.__name__}, "
                    f"got {type(self.params).__name__}"
                )
            if self.memory_bits is not None or self.target_fp is not None:
                raise ConfigurationError(
                    "params carry exact sizes; memory_bits / target_fp "
                    "do not apply"
                )
            if self.num_hashes is not None:
                raise ConfigurationError(
                    "params carry the hash count; num_hashes does not apply"
                )
        elif self.algorithm != "exact":
            if self.memory_bits is None and self.target_fp is None:
                raise ConfigurationError(
                    f"{self.algorithm} needs memory_bits, target_fp, or "
                    "params for sizing"
                )
            if self.memory_bits is not None and self.target_fp is not None:
                raise ConfigurationError(
                    "pass memory_bits or target_fp, not both"
                )


def create_detector(spec, window: Optional[WindowSpec] = None, **kwargs):
    """Build the detector a :class:`DetectorSpec` describes.

    The blessed call shape is ``create_detector(spec)``.  The legacy
    shape ``create_detector(algorithm, window, memory_bits=...,
    target_fp=..., num_hashes=..., seed=...)`` is deprecated — it warns
    and forwards to the spec path, building the identical detector.
    """
    if isinstance(spec, DetectorSpec):
        if window is not None or kwargs:
            raise ConfigurationError(
                "create_detector(DetectorSpec) takes no extra arguments; "
                "put them in the spec"
            )
        return _build(spec)
    warnings.warn(
        "create_detector(algorithm, window, **kwargs) is deprecated; "
        "pass a DetectorSpec instead: "
        "create_detector(DetectorSpec(algorithm, window, ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build(DetectorSpec(spec, window, **kwargs))


def _build(spec: DetectorSpec):
    window = spec.window
    algorithm = spec.algorithm
    if algorithm == "exact":
        return _create_exact(window)

    if algorithm == "gbf":
        _require(window, "jumping", algorithm)
        plan = _gbf_plan(spec)
        return GBFDetector(
            window.size,
            window.num_subwindows,
            plan.bits_per_filter,
            spec.num_hashes or plan.num_hashes,
            seed=spec.seed,
        )

    if algorithm == "gbf-time":
        _require(window, "jumping", algorithm)
        plan = _gbf_plan(spec)
        return TimeBasedGBFDetector(
            spec.duration,
            window.num_subwindows,
            plan.bits_per_filter,
            spec.num_hashes or plan.num_hashes,
            units_per_subwindow=spec.resolution,
            seed=spec.seed,
        )

    if algorithm == "tbf":
        _require(window, "sliding", algorithm)
        plan = _tbf_plan(spec)
        k = spec.num_hashes or plan.num_hashes
        if spec.shards > 1 or spec.engine == "parallel":
            return _sharded_tbf(spec, plan.num_entries, k)
        return TBFDetector(
            window.size,
            plan.num_entries,
            k,
            cleanup_slack=plan.cleanup_slack,
            seed=spec.seed,
        )

    if algorithm == "tbf-time":
        _require(window, "sliding", algorithm)
        plan = _tbf_plan(spec)
        k = spec.num_hashes or plan.num_hashes
        if spec.shards > 1 or spec.engine == "parallel":
            return _sharded_tbf_time(spec, plan.num_entries, k)
        return TimeBasedTBFDetector(
            spec.duration,
            spec.resolution,
            plan.num_entries,
            k,
            # Sizing plans carry count-window slack, which does not
            # apply to the time-based cleaner; only exact params pin it.
            cleanup_slack=(
                spec.params.cleanup_slack if spec.params is not None else None
            ),
            seed=spec.seed,
        )

    if algorithm == "apbf":
        _require(window, "sliding", algorithm)
        plan = _apbf_plan(spec)
        from ..adaptive.filters import AgePartitionedBFDetector

        if spec.shards > 1 or spec.engine == "parallel":
            return _sharded_sliced(spec, plan)
        return AgePartitionedBFDetector(
            plan.num_required,
            plan.num_aged,
            plan.slice_bits,
            plan.generation_size,
            seed=spec.seed,
        )

    if algorithm == "time-limited-bf":
        _require(window, "sliding", algorithm)
        plan = _tlbf_plan(spec)
        from ..adaptive.filters import TimeLimitedBFDetector

        if spec.shards > 1 or spec.engine == "parallel":
            return _sharded_sliced(spec, plan)
        return TimeLimitedBFDetector(
            spec.duration,
            plan.num_required,
            plan.num_aged,
            plan.slice_bits,
            seed=spec.seed,
        )

    if algorithm == "tbf-jumping":
        _require(window, "jumping", algorithm)
        if spec.params is not None:
            return TBFJumpingDetector(
                window.size,
                window.num_subwindows,
                spec.params.num_entries,
                spec.params.num_hashes,
                cleanup_slack=spec.params.cleanup_slack,
                seed=spec.seed,
            )
        # Size like a sliding-window TBF but with sub-window timestamps
        # (entries need only ceil(log2(2Q + 1)) bits).
        if spec.memory_bits is not None:
            import math

            entry_bits = max(
                1, math.ceil(math.log2(2 * window.num_subwindows + 2))
            )
            num_entries = max(1, spec.memory_bits // entry_bits)
        else:
            num_entries = plan_tbf_for_target(window.size, spec.target_fp).num_entries
        from ..bloom.params import optimal_num_hashes

        k = spec.num_hashes or optimal_num_hashes(num_entries, window.size)
        return TBFJumpingDetector(
            window.size, window.num_subwindows, num_entries, k, seed=spec.seed
        )

    if algorithm == "landmark-bloom":
        _require(window, "landmark", algorithm)
        num_bits, k = _plain_bloom_size(window.size, spec.memory_bits, spec.target_fp)
        return LandmarkBloomDetector(
            window.size, num_bits, spec.num_hashes or k, seed=spec.seed
        )

    if algorithm == "naive-bloom":
        _require(window, "jumping", algorithm)
        plan = _gbf_plan(spec)
        return NaiveSubwindowBloomDetector(
            window.size,
            window.num_subwindows,
            plan.bits_per_filter,
            spec.num_hashes or plan.num_hashes,
            seed=spec.seed,
        )

    if algorithm == "metwally-cbf":
        _require(window, "jumping", algorithm)
        counter_bits = 8
        if spec.memory_bits is not None:
            num_counters = max(
                1, spec.memory_bits // ((window.num_subwindows + 1) * counter_bits)
            )
        else:
            # Main filter carries the full window load; size it for that.
            from ..bloom.params import bits_for_target_rate

            num_counters = bits_for_target_rate(window.size, spec.target_fp)
        from ..bloom.params import optimal_num_hashes

        k = spec.num_hashes or optimal_num_hashes(num_counters, window.size)
        return MetwallyCBFDetector(
            window.size,
            window.num_subwindows,
            num_counters,
            k,
            counter_bits=counter_bits,
            seed=spec.seed,
        )

    # stable-bloom
    if window.kind != "sliding":
        raise ConfigurationError("stable-bloom approximates sliding windows only")
    cell_bits = 3
    if spec.memory_bits is not None:
        num_cells = max(1, spec.memory_bits // cell_bits)
    else:
        from ..bloom.params import bits_for_target_rate

        num_cells = bits_for_target_rate(window.size, spec.target_fp)
    return StableBloomDetector.with_tuned_decay(
        window.size, num_cells, spec.num_hashes or 4,
        cell_bits=cell_bits, seed=spec.seed,
    )


def _gbf_plan(spec: DetectorSpec):
    if spec.params is not None:
        return spec.params
    window = spec.window
    if spec.memory_bits is not None:
        return plan_gbf_from_memory(
            window.size, window.num_subwindows, spec.memory_bits, spec.num_hashes
        )
    return plan_gbf_for_target(window.size, window.num_subwindows, spec.target_fp)


def _tbf_plan(spec: DetectorSpec):
    if spec.params is not None:
        return spec.params
    if spec.memory_bits is not None:
        return plan_tbf_from_memory(spec.window.size, spec.memory_bits, spec.num_hashes)
    return plan_tbf_for_target(spec.window.size, spec.target_fp)


def _apbf_plan(spec: DetectorSpec):
    if spec.params is not None:
        return spec.params
    from ..adaptive.filters import plan_apbf_for_target, plan_apbf_from_memory

    if spec.memory_bits is not None:
        # num_hashes plays the run-length role (k young slices).
        return plan_apbf_from_memory(
            spec.window.size, spec.memory_bits, spec.num_hashes
        )
    return plan_apbf_for_target(spec.window.size, spec.target_fp)


def _tlbf_plan(spec: DetectorSpec):
    if spec.params is not None:
        return spec.params
    from ..adaptive.filters import plan_tlbf_for_target, plan_tlbf_from_memory

    if spec.memory_bits is not None:
        return plan_tlbf_from_memory(
            spec.window.size, spec.resolution, spec.memory_bits, spec.num_hashes
        )
    return plan_tlbf_for_target(spec.window.size, spec.resolution, spec.target_fp)


def _sharded_tbf(spec: DetectorSpec, total_entries: int, num_hashes: int):
    """Count-based sharded/parallel TBF from one spec (memory split evenly)."""
    if spec.engine == "parallel":
        from ..parallel import ParallelShardedDetector

        return ParallelShardedDetector._of_tbf(
            spec.window.size, spec.shards, total_entries, num_hashes, seed=spec.seed
        )
    from .sharded import ShardedDetector

    return ShardedDetector._of_tbf(
        spec.window.size, spec.shards, total_entries, num_hashes, seed=spec.seed
    )


def _sharded_tbf_time(spec: DetectorSpec, total_entries: int, num_hashes: int):
    """Time-based sharded/parallel TBF (exact window semantics per shard)."""
    if spec.engine == "parallel":
        from ..parallel import ParallelTimeShardedDetector

        return ParallelTimeShardedDetector._of_tbf(
            spec.duration, spec.resolution, spec.shards, total_entries,
            num_hashes, seed=spec.seed,
        )
    from .sharded import TimeShardedDetector

    return TimeShardedDetector._of_tbf(
        spec.duration, spec.resolution, spec.shards, total_entries,
        num_hashes, seed=spec.seed,
    )


def _sharded_sliced(spec: DetectorSpec, plan):
    """Sharded/parallel sliced filter (APBF / time-limited BF).

    The plan carries totals; each shard gets an even split of the slice
    bits (and, for the APBF, of the generation size) with per-shard
    seeds, mirroring the TBF convention.
    """
    from ..adaptive.filters import AgePartitionedBFDetector, TimeLimitedBFDetector
    from .sharded import ShardedDetector, TimeShardedDetector

    n = spec.shards
    slice_bits = max(1, plan.slice_bits // n)
    if spec.algorithm == "apbf":
        generation = max(1, plan.generation_size // n)
        shards = [
            AgePartitionedBFDetector(
                plan.num_required, plan.num_aged, slice_bits, generation,
                seed=spec.seed + shard,
            )
            for shard in range(n)
        ]
        base = ShardedDetector(shards)
    else:
        shards = [
            TimeLimitedBFDetector(
                spec.duration, plan.num_required, plan.num_aged, slice_bits,
                seed=spec.seed + shard,
            )
            for shard in range(n)
        ]
        base = TimeShardedDetector(shards)
    if spec.engine == "parallel":
        if spec.algorithm == "apbf":
            from ..parallel import ParallelShardedDetector

            return ParallelShardedDetector(base)
        from ..parallel import ParallelTimeShardedDetector

        return ParallelTimeShardedDetector(base)
    return base


def _create_exact(window: WindowSpec):
    if window.kind == "sliding":
        return ExactDetector.sliding(window.size)
    if window.kind == "jumping":
        return ExactDetector.jumping(window.size, window.num_subwindows)
    return ExactDetector.landmark(window.size)


def _require(window: WindowSpec, kind: str, algorithm: str) -> None:
    if window.kind != kind:
        raise ConfigurationError(
            f"{algorithm} runs over {kind} windows, got {window.kind!r}"
        )


def _plain_bloom_size(
    window_size: int, memory_bits: Optional[int], target_fp: Optional[float]
):
    from ..bloom.params import bits_for_target_rate, optimal_num_hashes

    if memory_bits is not None:
        num_bits = memory_bits
    else:
        num_bits = bits_for_target_rate(window_size, target_fp)
    return num_bits, optimal_num_hashes(num_bits, window_size)
