"""Unified construction of duplicate-click detectors.

One factory, every algorithm in the library, with auto-sizing: give it
a window specification plus either explicit filter parameters or a
memory budget / FP target and it returns a ready detector implementing
the :class:`~repro.types.DuplicateDetector` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.sizing import (
    plan_gbf_for_target,
    plan_gbf_from_memory,
    plan_tbf_for_target,
    plan_tbf_from_memory,
)
from ..baselines import (
    ExactDetector,
    LandmarkBloomDetector,
    MetwallyCBFDetector,
    NaiveSubwindowBloomDetector,
    StableBloomDetector,
)
from ..core import GBFDetector, TBFDetector, TBFJumpingDetector
from ..errors import ConfigurationError

ALGORITHMS = (
    "gbf",
    "tbf",
    "tbf-jumping",
    "exact",
    "landmark-bloom",
    "naive-bloom",
    "metwally-cbf",
    "stable-bloom",
)


@dataclass(frozen=True)
class WindowSpec:
    """A decaying-window requirement.

    ``kind`` is ``"sliding"``, ``"jumping"`` or ``"landmark"``;
    ``num_subwindows`` applies to jumping windows only.
    """

    kind: str
    size: int
    num_subwindows: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("sliding", "jumping", "landmark"):
            raise ConfigurationError(f"unknown window kind {self.kind!r}")
        if self.size < 1:
            raise ConfigurationError(f"window size must be >= 1, got {self.size}")
        if self.kind == "jumping":
            if self.num_subwindows < 1:
                raise ConfigurationError(
                    f"num_subwindows must be >= 1, got {self.num_subwindows}"
                )
            if self.size % self.num_subwindows != 0:
                raise ConfigurationError(
                    f"window size {self.size} not divisible by "
                    f"{self.num_subwindows} sub-windows"
                )


def create_detector(
    algorithm: str,
    window: WindowSpec,
    memory_bits: Optional[int] = None,
    target_fp: Optional[float] = None,
    num_hashes: Optional[int] = None,
    seed: int = 0,
):
    """Build a detector for ``window`` using ``algorithm``.

    Exactly one of ``memory_bits`` / ``target_fp`` sizes the sketch
    (the exact baseline needs neither).  ``num_hashes`` overrides the
    auto-chosen optimum.
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
        )
    if algorithm == "exact":
        return _create_exact(window)
    if memory_bits is None and target_fp is None:
        raise ConfigurationError(
            f"{algorithm} needs memory_bits or target_fp for sizing"
        )
    if memory_bits is not None and target_fp is not None:
        raise ConfigurationError("pass memory_bits or target_fp, not both")

    if algorithm == "gbf":
        _require(window, "jumping", algorithm)
        if memory_bits is not None:
            plan = plan_gbf_from_memory(
                window.size, window.num_subwindows, memory_bits, num_hashes
            )
        else:
            plan = plan_gbf_for_target(window.size, window.num_subwindows, target_fp)
        return GBFDetector(
            window.size,
            window.num_subwindows,
            plan.bits_per_filter,
            num_hashes or plan.num_hashes,
            seed=seed,
        )

    if algorithm == "tbf":
        _require(window, "sliding", algorithm)
        if memory_bits is not None:
            plan = plan_tbf_from_memory(window.size, memory_bits, num_hashes)
        else:
            plan = plan_tbf_for_target(window.size, target_fp)
        return TBFDetector(
            window.size,
            plan.num_entries,
            num_hashes or plan.num_hashes,
            cleanup_slack=plan.cleanup_slack,
            seed=seed,
        )

    if algorithm == "tbf-jumping":
        _require(window, "jumping", algorithm)
        # Size like a sliding-window TBF but with sub-window timestamps
        # (entries need only ceil(log2(2Q + 1)) bits).
        if memory_bits is not None:
            import math

            entry_bits = max(
                1, math.ceil(math.log2(2 * window.num_subwindows + 2))
            )
            num_entries = max(1, memory_bits // entry_bits)
        else:
            plan = plan_tbf_for_target(window.size, target_fp)
            num_entries = plan.num_entries
        from ..bloom.params import optimal_num_hashes

        k = num_hashes or optimal_num_hashes(num_entries, window.size)
        return TBFJumpingDetector(
            window.size, window.num_subwindows, num_entries, k, seed=seed
        )

    if algorithm == "landmark-bloom":
        _require(window, "landmark", algorithm)
        num_bits, k = _plain_bloom_size(window.size, memory_bits, target_fp)
        return LandmarkBloomDetector(
            window.size, num_bits, num_hashes or k, seed=seed
        )

    if algorithm == "naive-bloom":
        _require(window, "jumping", algorithm)
        if memory_bits is not None:
            plan = plan_gbf_from_memory(
                window.size, window.num_subwindows, memory_bits, num_hashes
            )
        else:
            plan = plan_gbf_for_target(window.size, window.num_subwindows, target_fp)
        return NaiveSubwindowBloomDetector(
            window.size,
            window.num_subwindows,
            plan.bits_per_filter,
            num_hashes or plan.num_hashes,
            seed=seed,
        )

    if algorithm == "metwally-cbf":
        _require(window, "jumping", algorithm)
        counter_bits = 8
        if memory_bits is not None:
            num_counters = max(
                1, memory_bits // ((window.num_subwindows + 1) * counter_bits)
            )
        else:
            # Main filter carries the full window load; size it for that.
            from ..bloom.params import bits_for_target_rate

            num_counters = bits_for_target_rate(window.size, target_fp)
        from ..bloom.params import optimal_num_hashes

        k = num_hashes or optimal_num_hashes(num_counters, window.size)
        return MetwallyCBFDetector(
            window.size,
            window.num_subwindows,
            num_counters,
            k,
            counter_bits=counter_bits,
            seed=seed,
        )

    # stable-bloom
    if window.kind != "sliding":
        raise ConfigurationError("stable-bloom approximates sliding windows only")
    cell_bits = 3
    if memory_bits is not None:
        num_cells = max(1, memory_bits // cell_bits)
    else:
        from ..bloom.params import bits_for_target_rate

        num_cells = bits_for_target_rate(window.size, target_fp)
    return StableBloomDetector.with_tuned_decay(
        window.size, num_cells, num_hashes or 4, cell_bits=cell_bits, seed=seed
    )


def _create_exact(window: WindowSpec):
    if window.kind == "sliding":
        return ExactDetector.sliding(window.size)
    if window.kind == "jumping":
        return ExactDetector.jumping(window.size, window.num_subwindows)
    return ExactDetector.landmark(window.size)


def _require(window: WindowSpec, kind: str, algorithm: str) -> None:
    if window.kind != kind:
        raise ConfigurationError(
            f"{algorithm} runs over {kind} windows, got {window.kind!r}"
        )


def _plain_bloom_size(
    window_size: int, memory_bits: Optional[int], target_fp: Optional[float]
):
    from ..bloom.params import bits_for_target_rate, optimal_num_hashes

    if memory_bits is not None:
        num_bits = memory_bits
    else:
        num_bits = bits_for_target_rate(window_size, target_fp)
    return num_bits, optimal_num_hashes(num_bits, window_size)
