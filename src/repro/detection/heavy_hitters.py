"""Space-Saving heavy hitters: the complement to duplicate detection.

Duplicate detection has a precise boundary: an attacker who never
reuses an identifier (hit inflation, §2.4; identifier rotation,
:class:`~repro.streams.attacks.RotatingIdentityCampaign`) sails through
it.  What such attacks *cannot* avoid is skew — an abnormal share of
clicks landing on one ad, one publisher, or one advertiser's keywords.

The canonical bounded-memory skew detector is **Space-Saving**
(Metwally, Agrawal & El Abbadi, ICDT 2005 — the same authors as the
paper's click-stream related work [20–23], who built their hit-
inflation detectors on exactly this summary).  It maintains ``capacity``
counters; a monitored element's increment is exact, an unmonitored one
evicts the minimum counter and inherits its count as over-estimation
error.  Guarantees, both tested here:

* every element with true frequency > ``stream_length / capacity`` is
  in the summary (no false dismissal of real heavy hitters);
* each reported count over-estimates by at most the minimum counter.

:class:`SkewMonitor` packages it per dimension (ad, source, publisher)
for fraud review queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..streams.click import Click


@dataclass(frozen=True)
class HeavyHitter:
    """One reported element: count is an over-estimate by <= error."""

    element: int
    count: int
    error: int

    @property
    def guaranteed_count(self) -> int:
        """A certain lower bound on the true frequency."""
        return self.count - self.error


class SpaceSaving:
    """The Space-Saving stream summary with ``capacity`` counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: element -> (count, error)
        self._counters: Dict[int, Tuple[int, int]] = {}
        self.stream_length = 0

    def observe(self, element: int) -> None:
        self.stream_length += 1
        counters = self._counters
        entry = counters.get(element)
        if entry is not None:
            counters[element] = (entry[0] + 1, entry[1])
            return
        if len(counters) < self.capacity:
            counters[element] = (1, 0)
            return
        # Evict the minimum counter; the newcomer inherits its count as
        # over-estimation error.
        victim = min(counters, key=lambda key: counters[key][0])
        minimum = counters[victim][0]
        del counters[victim]
        counters[element] = (minimum + 1, minimum)

    def count(self, element: int) -> int:
        """Estimated (over-approximate) frequency; 0 if unmonitored."""
        entry = self._counters.get(element)
        return entry[0] if entry else 0

    def top(self, k: int) -> List[HeavyHitter]:
        """The ``k`` largest counters, descending."""
        ranked = sorted(
            self._counters.items(), key=lambda item: (-item[1][0], item[0])
        )
        return [
            HeavyHitter(element=element, count=count, error=error)
            for element, (count, error) in ranked[:k]
        ]

    def heavy_hitters(self, phi: float) -> List[HeavyHitter]:
        """Elements whose estimated share exceeds ``phi``.

        Everything with true share > ``phi`` is included whenever
        ``capacity >= 1 / phi`` (the Space-Saving guarantee); extras may
        appear but carry their error bound for the caller to judge.
        """
        if not 0.0 < phi < 1.0:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self.stream_length
        return [
            hitter
            for hitter in self.top(len(self._counters))
            if hitter.count > threshold
        ]

    @property
    def min_count(self) -> int:
        """The summary-wide over-estimation bound."""
        if len(self._counters) < self.capacity:
            return 0
        return min(count for count, _ in self._counters.values())

    @property
    def memory_bits(self) -> int:
        """Modeled: 64-bit element + 2 x 32-bit count/error per counter."""
        return len(self._counters) * (64 + 32 + 32)


class SkewMonitor:
    """Per-dimension Space-Saving summaries over a click stream.

    Tracks which ads, sources, and publishers absorb abnormal click
    shares — the signal that flags identifier-rotation and
    hit-inflation campaigns that duplicate detection cannot see.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.by_ad = SpaceSaving(capacity)
        self.by_source = SpaceSaving(capacity)
        self.by_publisher = SpaceSaving(capacity)

    def observe(self, click: Click) -> None:
        self.by_ad.observe(click.ad_id)
        self.by_source.observe(click.source_ip)
        self.by_publisher.observe(click.publisher_id)

    def suspicious_ads(self, phi: float = 0.05) -> List[HeavyHitter]:
        """Ads drawing more than ``phi`` of all clicks."""
        return self.by_ad.heavy_hitters(phi)

    def suspicious_sources(self, phi: float = 0.02) -> List[HeavyHitter]:
        return self.by_source.heavy_hitters(phi)

    @property
    def memory_bits(self) -> int:
        return (
            self.by_ad.memory_bits
            + self.by_source.memory_bits
            + self.by_publisher.memory_bits
        )
