"""The unified detector protocol: one API over all seven variants.

Seven detector variants have grown in this library — :class:`GBFDetector`
and :class:`TBFDetector` (count-based), their time-based twins,
:class:`TBFJumpingDetector`, the in-process sharded detectors, and the
multi-process parallel engines — and each grew its call surface
organically.  This module pins the blessed surface down as two
runtime-checkable Protocols so pipelines, servers, and supervisors can
depend on *shape* instead of concrete classes:

:class:`Detector`
    Count-based windows: ``process`` / ``process_batch`` plus the
    operational trio ``checkpoint_state`` / ``telemetry_snapshot`` /
    ``memory_bits``.
:class:`TimedDetector`
    Time-based windows: ``process_at`` / ``process_batch_at`` plus the
    same operational trio (the caller's clock travels with each click).

Because half the variants take a timestamp and half do not, one more
layer makes them interchangeable: :func:`wrap_timed` adapts *any*
detector — either protocol, or legacy objects exposing only
``process``/``process_at`` — into a :class:`TimedAdapter` driven through
a single ``observe(identifier, timestamp)`` surface.  Count-based
detectors ignore the timestamp; time-based detectors require it.  The
:class:`~repro.detection.pipeline.DetectionPipeline` and the network
server (:mod:`repro.serve`) both depend only on this adapter.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Detector",
    "TimedDetector",
    "TimedAdapter",
    "wrap_timed",
    "is_timed",
    "DetectorLifecycle",
    "LifecycleAdapter",
    "as_lifecycle",
]


@runtime_checkable
class Detector(Protocol):
    """Count-based duplicate detector: the window advances per arrival.

    The scalar/batch pairs are bit-identical by construction: a
    ``process_batch`` call leaves the detector in exactly the state a
    scalar ``process`` loop over the same identifiers would, and
    returns the same verdicts (property-tested in
    ``tests/test_batch_equivalence.py``).
    """

    def process(self, identifier: int) -> bool:
        """Observe one element; ``True`` means duplicate (do not bill)."""
        ...

    def process_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`process` over a 1-D uint64 array."""
        ...

    def checkpoint_state(self) -> bytes:
        """Serialized sketch state (``repro.core.load_detector`` inverts)."""
        ...

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """Health gauges/counters for :mod:`repro.telemetry.instruments`."""
        ...

    @property
    def memory_bits(self) -> int:
        """Total bits of summary-structure state."""
        ...


@runtime_checkable
class TimedDetector(Protocol):
    """Time-based duplicate detector: the caller's clock drives expiry.

    Timestamps must be non-decreasing; the same scalar/batch
    bit-identity contract as :class:`Detector` applies.
    """

    def process_at(self, identifier: int, timestamp: float) -> bool:
        """Observe one element at ``timestamp``; ``True`` means duplicate."""
        ...

    def process_batch_at(
        self, identifiers: "np.ndarray", timestamps: "np.ndarray"
    ) -> "np.ndarray":
        """Vectorized :meth:`process_at` over parallel 1-D arrays."""
        ...

    def checkpoint_state(self) -> bytes:
        """Serialized sketch state (``repro.core.load_detector`` inverts)."""
        ...

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """Health gauges/counters for :mod:`repro.telemetry.instruments`."""
        ...

    @property
    def memory_bits(self) -> int:
        """Total bits of summary-structure state."""
        ...


def is_timed(detector: Any) -> bool:
    """Does ``detector`` consume explicit timestamps (``process_at``)?

    Count-based surfaces win when both are present (none of the library
    variants expose both, but a custom object could).
    """
    if hasattr(detector, "process"):
        return False
    return hasattr(detector, "process_at")


class TimedAdapter:
    """Drive any detector through ``observe(identifier, timestamp)``.

    The adapter normalizes the count-based/time-based split: callers
    always pass the click's timestamp, and the adapter forwards it to
    time-based detectors or drops it for count-based ones.  Verdicts are
    exactly the wrapped detector's — the adapter holds no state beyond
    the bound methods, so ``observe``/``observe_batch`` interleave
    freely with native calls.

    Detectors without a vectorized batch method (some baselines) get a
    scalar fallback loop in :meth:`observe_batch`; verdicts are
    identical either way.
    """

    __slots__ = ("base", "timed", "_scalar", "_batch")

    def __init__(self, base: Any) -> None:
        self.base = base
        self.timed = is_timed(base)
        if self.timed:
            self._scalar = base.process_at
            self._batch = getattr(base, "process_batch_at", None)
        else:
            self._scalar = getattr(base, "process", None)
            self._batch = getattr(base, "process_batch", None)
        if self._scalar is None:
            raise ConfigurationError(
                f"{type(base).__name__} exposes neither process() nor "
                "process_at(); nothing to adapt"
            )

    def observe(self, identifier: int, timestamp: Optional[float] = None) -> bool:
        """Observe one element; ``True`` means duplicate.

        ``timestamp`` is required when the wrapped detector is
        time-based and ignored when it is count-based.
        """
        if not self.timed:
            return self._scalar(identifier)
        if timestamp is None:
            raise ConfigurationError(
                f"{type(self.base).__name__} is time-based; observe() "
                "needs a timestamp"
            )
        return self._scalar(identifier, timestamp)

    def observe_batch(
        self,
        identifiers: "np.ndarray",
        timestamps: Optional["np.ndarray"] = None,
    ) -> "np.ndarray":
        """Vectorized :meth:`observe` over parallel arrays."""
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        if not self.timed:
            if self._batch is not None:
                return self._batch(identifiers)
            scalar = self._scalar
            return np.fromiter(
                (scalar(int(identifier)) for identifier in identifiers),
                dtype=bool,
                count=identifiers.shape[0],
            )
        if timestamps is None:
            raise ConfigurationError(
                f"{type(self.base).__name__} is time-based; observe_batch() "
                "needs timestamps"
            )
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if self._batch is not None:
            return self._batch(identifiers, timestamps)
        scalar = self._scalar
        return np.fromiter(
            (
                scalar(int(identifier), float(timestamp))
                for identifier, timestamp in zip(identifiers, timestamps)
            ),
            dtype=bool,
            count=identifiers.shape[0],
        )

    def checkpoint_state(self) -> bytes:
        """The wrapped detector's serialized state."""
        method = getattr(self.base, "checkpoint_state", None)
        if method is not None:
            return method()
        from ..core.checkpoint import save_detector

        return save_detector(self.base)

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """The wrapped detector's snapshot (``{}`` when it has none)."""
        method = getattr(self.base, "telemetry_snapshot", None)
        return method() if method is not None else {}

    @property
    def memory_bits(self) -> int:
        return self.base.memory_bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "timed" if self.timed else "counted"
        return f"TimedAdapter({type(self.base).__name__}, {kind})"


def wrap_timed(detector: Any) -> TimedAdapter:
    """Adapt ``detector`` to the unified ``observe`` surface.

    Idempotent: an adapter passes through unchanged, so pipelines can
    wrap unconditionally.
    """
    if isinstance(detector, TimedAdapter):
        return detector
    return TimedAdapter(detector)


@runtime_checkable
class DetectorLifecycle(Protocol):
    """The one lifecycle every operational flow drives.

    Three flows grew their own ad-hoc variants of the same dance —
    supervised restore (:mod:`repro.resilience.supervisor`), parallel
    fleet checkpointing (:mod:`repro.parallel.engine`), and cluster
    rebalancing (:mod:`repro.cluster.local`).  This protocol names the
    four steps they share so controllers (notably
    :class:`repro.adaptive.controller.AdaptiveController`) can run
    *quiesce → checkpoint → migrate(new_spec) → resume* against any of
    them without knowing which tier they are talking to.
    """

    def quiesce(self) -> None:
        """Drain in-flight work; afterwards state is stable to read."""
        ...

    def checkpoint(self) -> bytes:
        """Serialized state (``repro.core.load_detector`` inverts)."""
        ...

    def migrate(self, new_spec: Any) -> None:
        """Reconfigure in place to ``new_spec``, carrying state over."""
        ...

    def resume(self) -> None:
        """Leave the quiesced state and accept traffic again."""
        ...


class LifecycleAdapter:
    """Give a plain detector the :class:`DetectorLifecycle` surface.

    Plain detectors are synchronous — every call returns with state
    settled — so ``quiesce``/``resume`` delegate when the detector has
    them (sharded/parallel tiers) and are no-ops otherwise, and
    ``checkpoint`` rides the registry.  ``migrate`` delegates too;
    a detector with no native migrate cannot carry state across a
    reconfiguration by itself — wrap it in
    :class:`repro.adaptive.lifecycle.AdaptiveDetector`, which replays a
    bounded retained window, to get one.
    """

    __slots__ = ("base",)

    def __init__(self, base: Any) -> None:
        self.base = base

    def quiesce(self) -> None:
        method = getattr(self.base, "quiesce", None)
        if method is not None:
            method()

    def checkpoint(self) -> bytes:
        method = getattr(self.base, "checkpoint_state", None)
        if method is not None:
            return method()
        from ..core.checkpoint import save_detector

        return save_detector(self.base)

    def migrate(self, new_spec: Any) -> None:
        method = getattr(self.base, "migrate", None)
        if method is None:
            raise ConfigurationError(
                f"{type(self.base).__name__} has no native migrate; wrap it "
                "in repro.adaptive.lifecycle.AdaptiveDetector to migrate "
                "with bounded replay"
            )
        method(new_spec)

    def resume(self) -> None:
        method = getattr(self.base, "resume", None)
        if method is not None:
            method()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LifecycleAdapter({type(self.base).__name__})"


def as_lifecycle(detector: Any) -> DetectorLifecycle:
    """The :class:`DetectorLifecycle` view of any detector.

    Objects already exposing the full surface (sharded tiers, parallel
    engines, clusters, adaptive wrappers) pass through unchanged;
    everything else is wrapped in a :class:`LifecycleAdapter`.
    """
    if isinstance(detector, DetectorLifecycle):
        return detector
    return LifecycleAdapter(detector)
