"""Per-source fraud scoring from duplicate-detection verdicts.

Duplicate rejection stops the *billing* damage click by click; the
aggregate pattern of rejections is itself a fraud signal.  A legitimate
visitor triggers the duplicate filter rarely; a bot hammering an ad
triggers it on almost every click.  The scoreboard aggregates verdicts
by source IP and by publisher so operators can rank suspects — the
"click quality" direction the paper's conclusion sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..streams.click import Click


@dataclass
class SourceStats:
    """Counts for one aggregation key (a source IP or a publisher)."""

    clicks: int = 0
    duplicates: int = 0

    @property
    def duplicate_rate(self) -> float:
        return self.duplicates / self.clicks if self.clicks else 0.0

    def score(self, min_clicks: int = 5) -> float:
        """Fraud suspicion in [0, 1]: duplicate rate, damped below
        ``min_clicks`` so single-digit visitors are not over-flagged."""
        if self.clicks == 0:
            return 0.0
        confidence = min(1.0, self.clicks / min_clicks)
        return self.duplicate_rate * confidence


@dataclass
class SourceScoreboard:
    """Streaming aggregation of verdicts by source IP and publisher."""

    by_source: Dict[int, SourceStats] = field(default_factory=dict)
    by_publisher: Dict[int, SourceStats] = field(default_factory=dict)

    def record(self, click: Click, duplicate: bool) -> None:
        for key, table in (
            (click.source_ip, self.by_source),
            (click.publisher_id, self.by_publisher),
        ):
            stats = table.get(key)
            if stats is None:
                stats = SourceStats()
                table[key] = stats
            stats.clicks += 1
            if duplicate:
                stats.duplicates += 1

    def top_sources(self, count: int = 10, min_clicks: int = 5) -> List[Tuple[int, SourceStats]]:
        """Most suspicious source IPs, highest score first."""
        ranked = sorted(
            self.by_source.items(),
            key=lambda item: (-item[1].score(min_clicks), item[0]),
        )
        return ranked[:count]

    def top_publishers(self, count: int = 10, min_clicks: int = 5) -> List[Tuple[int, SourceStats]]:
        """Publishers ranked by the duplicate rate of their traffic."""
        ranked = sorted(
            self.by_publisher.items(),
            key=lambda item: (-item[1].score(min_clicks), item[0]),
        )
        return ranked[:count]
