"""Click-quality scoring and smart pricing.

The paper's conclusion points at "click quality under data stream
models" as the next step beyond binary duplicate filtering.  This
module implements the industry mechanism built on exactly that signal:
**smart pricing** — discounting a publisher's cost-per-click by the
measured quality of its traffic, so that even fraud that slips past
dedup earns less.

Quality here is the windowed valid-click ratio, tracked per publisher
with the sublinear :class:`~repro.windows.SlidingWindowCounter`
(Exponential Histograms) rather than a full history — the same
space-conscious streaming discipline as the detectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from ..streams.click import Click
from ..windows import SlidingWindowCounter


@dataclass(frozen=True)
class QualityConfig:
    """Smart-pricing policy knobs.

    ``window`` is how many recent clicks define a publisher's quality;
    ``floor`` is the lowest multiplier ever applied (publishers keep
    some revenue even while under attack, pending human review);
    ``grace_clicks`` exempts brand-new publishers from discounting.
    """

    window: int = 10_000
    epsilon: float = 0.1
    floor: float = 0.1
    grace_clicks: int = 100

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if not 0.0 <= self.floor <= 1.0:
            raise ConfigurationError(f"floor must be in [0, 1], got {self.floor}")
        if self.grace_clicks < 0:
            raise ConfigurationError(
                f"grace_clicks must be >= 0, got {self.grace_clicks}"
            )


class ClickQualityTracker:
    """Streaming per-publisher quality scores and price multipliers."""

    def __init__(self, config: QualityConfig | None = None) -> None:
        self.config = config or QualityConfig()
        self._counters: Dict[int, SlidingWindowCounter] = {}
        self._clicks: Dict[int, int] = {}

    def observe(self, click: Click, duplicate: bool) -> None:
        """Record one verdict for the click's publisher."""
        counter = self._counters.get(click.publisher_id)
        if counter is None:
            counter = SlidingWindowCounter(self.config.window, self.config.epsilon)
            self._counters[click.publisher_id] = counter
        counter.observe(not duplicate)  # count VALID clicks
        self._clicks[click.publisher_id] = self._clicks.get(click.publisher_id, 0) + 1

    def quality(self, publisher_id: int) -> float:
        """Windowed valid-click ratio in [0, 1]; 1.0 when unknown."""
        counter = self._counters.get(publisher_id)
        if counter is None:
            return 1.0
        return counter.rate()

    def price_multiplier(self, publisher_id: int) -> float:
        """Smart-pricing multiplier for this publisher's next click.

        New publishers (inside the grace period) bill at face value;
        established ones bill at ``max(floor, quality)``.
        """
        if self._clicks.get(publisher_id, 0) < self.config.grace_clicks:
            return 1.0
        return max(self.config.floor, self.quality(publisher_id))

    def smart_price(self, click: Click, cpc: float) -> float:
        """The discounted amount to bill for ``click`` at list price ``cpc``."""
        if cpc < 0:
            raise ConfigurationError(f"cpc must be >= 0, got {cpc}")
        return cpc * self.price_multiplier(click.publisher_id)

    def report(self) -> Dict[int, Dict[str, float]]:
        """Per-publisher snapshot: clicks seen, quality, multiplier."""
        return {
            publisher_id: {
                "clicks": self._clicks.get(publisher_id, 0),
                "quality": round(self.quality(publisher_id), 4),
                "multiplier": round(self.price_multiplier(publisher_id), 4),
            }
            for publisher_id in self._counters
        }

    @property
    def memory_bits(self) -> int:
        """Sketch state across all publishers (EH buckets, not histories)."""
        return sum(counter.memory_bits for counter in self._counters.values())
