"""Threshold alerting on top of the fraud scoreboard.

Converts streaming duplicate statistics into discrete operator alerts:
"source 10.0.0.7 exceeded a 60% duplicate rate over 50+ clicks".
Alerts fire once per (key, rule) pair until reset, so a sustained
attack produces one actionable event, not a flood.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from ..errors import ConfigurationError
from ..streams.click import Click
from .scoring import SourceScoreboard


@dataclass(frozen=True)
class AlertRule:
    """Fire when a key's duplicate rate crosses ``threshold`` with volume.

    ``scope`` is ``"source"`` or ``"publisher"``.
    """

    name: str
    scope: str
    threshold: float
    min_clicks: int = 20

    def __post_init__(self) -> None:
        if self.scope not in ("source", "publisher"):
            raise ConfigurationError(f"unknown alert scope {self.scope!r}")
        if not 0.0 < self.threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1], got {self.threshold}"
            )
        if self.min_clicks < 1:
            raise ConfigurationError(
                f"min_clicks must be >= 1, got {self.min_clicks}"
            )


@dataclass(frozen=True)
class Alert:
    """One fired alert."""

    rule_name: str
    scope: str
    key: int
    clicks: int
    duplicate_rate: float
    timestamp: float


class AlertEngine:
    """Evaluates alert rules as verdicts stream in.

    Pass a :class:`~repro.telemetry.MetricsRegistry` to make alert
    volume scrapeable: every fired alert increments
    ``repro_alerts_fired_total{rule,scope}``.
    """

    def __init__(self, rules: List[AlertRule], registry=None) -> None:
        self.rules = list(rules)
        self.scoreboard = SourceScoreboard()
        self.alerts: List[Alert] = []
        self._fired: Set[Tuple[str, int]] = set()
        self._fired_counter = (
            registry.counter(
                "repro_alerts_fired_total",
                "Threshold-breach alerts fired, by rule and scope",
                labels=("rule", "scope"),
            )
            if registry is not None
            else None
        )

    def observe(self, click: Click, duplicate: bool) -> List[Alert]:
        """Record one verdict; returns any alerts that just fired."""
        self.scoreboard.record(click, duplicate)
        fired_now: List[Alert] = []
        for rule in self.rules:
            if rule.scope == "source":
                key = click.source_ip
                stats = self.scoreboard.by_source[key]
            else:
                key = click.publisher_id
                stats = self.scoreboard.by_publisher[key]
            if stats.clicks < rule.min_clicks:
                continue
            if stats.duplicate_rate < rule.threshold:
                continue
            fingerprint = (rule.name, key)
            if fingerprint in self._fired:
                continue
            self._fired.add(fingerprint)
            alert = Alert(
                rule_name=rule.name,
                scope=rule.scope,
                key=key,
                clicks=stats.clicks,
                duplicate_rate=stats.duplicate_rate,
                timestamp=click.timestamp,
            )
            self.alerts.append(alert)
            fired_now.append(alert)
            if self._fired_counter is not None:
                self._fired_counter.labels(rule=rule.name, scope=rule.scope).inc()
        return fired_now

    def reset_key(self, rule_name: str, key: int) -> None:
        """Re-arm a (rule, key) pair after the operator handles the alert."""
        self._fired.discard((rule_name, key))


def default_rules() -> List[AlertRule]:
    """A sensible starting rule set for the examples."""
    return [
        AlertRule(name="hot-source", scope="source", threshold=0.5, min_clicks=20),
        AlertRule(
            name="suspicious-publisher",
            scope="publisher",
            threshold=0.3,
            min_clicks=200,
        ),
    ]
