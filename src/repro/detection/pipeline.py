"""The end-to-end detection pipeline: clicks → detector → billing.

Ties the whole system together: every click is projected to its
identifier, passed through a one-pass duplicate detector, and settled —
charged if valid, rejected if duplicate — while per-source statistics
accumulate for fraud scoring.  This is the deployment shape the paper
envisions for either party of the advertiser/publisher audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..adnet.billing import BillingEngine
from ..errors import BudgetError, ConfigurationError
from ..streams.click import Click, DEFAULT_SCHEME, IdentifierScheme
from .scoring import SourceScoreboard


def _classifier(detector):
    """One callable ``(identifier, timestamp) -> duplicate?`` for either
    detector protocol: count-based ``process`` or time-based ``process_at``."""
    process = getattr(detector, "process", None)
    if process is not None:
        return lambda identifier, timestamp: process(identifier)
    process_at = getattr(detector, "process_at", None)
    if process_at is not None:
        return process_at
    raise ConfigurationError(
        f"{type(detector).__name__} exposes neither process() nor process_at()"
    )


@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    processed: int = 0
    valid: int = 0
    duplicates: int = 0
    budget_exhausted: int = 0
    scoreboard: Optional[SourceScoreboard] = None
    billing_summary: Dict[str, float] = field(default_factory=dict)

    @property
    def duplicate_rate(self) -> float:
        return self.duplicates / self.processed if self.processed else 0.0


class DetectionPipeline:
    """One party's online click-processing loop.

    Parameters
    ----------
    detector:
        Any object with ``process(identifier) -> bool`` (count-based) or
        ``process_at(identifier, timestamp) -> bool`` (time-based; the
        click's timestamp drives the window clock).
    billing:
        Optional :class:`~repro.adnet.billing.BillingEngine`; without
        it the pipeline only classifies (the auditing-side use case).
    scheme:
        How clicks map to duplicate-detection identifiers.
    score_sources:
        Track per-source duplicate ratios for fraud scoring.
    """

    def __init__(
        self,
        detector,
        billing: Optional[BillingEngine] = None,
        scheme: IdentifierScheme = DEFAULT_SCHEME,
        score_sources: bool = True,
    ) -> None:
        self.billing = billing
        self.scheme = scheme
        self.scoreboard = SourceScoreboard() if score_sources else None
        self.set_detector(detector)

    def set_detector(self, detector) -> None:
        """Swap in a (restored) detector, rebinding the verdict dispatch."""
        self.detector = detector
        self._classify = _classifier(detector)

    def process_click(self, click: Click) -> bool:
        """Handle one click; returns True when rejected as duplicate."""
        identifier = self.scheme.identify(click)
        duplicate = self._classify(identifier, click.timestamp)
        if self.scoreboard is not None:
            self.scoreboard.record(click, duplicate)
        if self.billing is not None:
            if duplicate:
                self.billing.reject_duplicate(click)
            else:
                self.billing.charge(click)
        return duplicate

    def run(self, clicks: Iterable[Click]) -> PipelineResult:
        """Process a whole stream, tolerating exhausted budgets."""
        result = PipelineResult(scoreboard=self.scoreboard)
        for click in clicks:
            result.processed += 1
            try:
                duplicate = self.process_click(click)
            except BudgetError:
                result.budget_exhausted += 1
                continue
            if duplicate:
                result.duplicates += 1
            else:
                result.valid += 1
        if self.billing is not None:
            result.billing_summary = self.billing.summary()
        return result


def classify_stream(
    clicks: Iterable[Click],
    detector,
    scheme: IdentifierScheme = DEFAULT_SCHEME,
) -> List[bool]:
    """Bare classification: the detector's verdict per click, in order."""
    identify = scheme.identify
    classify = _classifier(detector)
    return [classify(identify(click), click.timestamp) for click in clicks]
