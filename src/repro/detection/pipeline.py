"""The end-to-end detection pipeline: clicks → detector → billing.

Ties the whole system together: every click is projected to its
identifier, passed through a one-pass duplicate detector, and settled —
charged if valid, rejected if duplicate — while per-source statistics
accumulate for fraud scoring.  This is the deployment shape the paper
envisions for either party of the advertiser/publisher audit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..adnet.billing import BillingEngine
from ..errors import BudgetError, ConfigurationError
from ..streams.click import Click, DEFAULT_SCHEME, IdentifierScheme
from ..telemetry import TelemetrySession
from .api import wrap_timed
from .scoring import SourceScoreboard


@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    processed: int = 0
    valid: int = 0
    duplicates: int = 0
    budget_exhausted: int = 0
    scoreboard: Optional[SourceScoreboard] = None
    billing_summary: Dict[str, float] = field(default_factory=dict)

    @property
    def duplicate_rate(self) -> float:
        return self.duplicates / self.processed if self.processed else 0.0


class DetectionPipeline:
    """One party's online click-processing loop.

    Parameters
    ----------
    detector:
        Any object with ``process(identifier) -> bool`` (count-based) or
        ``process_at(identifier, timestamp) -> bool`` (time-based; the
        click's timestamp drives the window clock).
    billing:
        Optional :class:`~repro.adnet.billing.BillingEngine`; without
        it the pipeline only classifies (the auditing-side use case).
    scheme:
        How clicks map to duplicate-detection identifiers.
    score_sources:
        Track per-source duplicate ratios for fraud scoring.
    telemetry:
        A :class:`~repro.telemetry.TelemetrySession`.  Defaults to the
        disabled session, whose registry and tracer are no-op twins —
        the instrumented paths below then cost single dead calls.
    """

    def __init__(
        self,
        detector,
        billing: Optional[BillingEngine] = None,
        scheme: IdentifierScheme = DEFAULT_SCHEME,
        score_sources: bool = True,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        self.billing = billing
        self.scheme = scheme
        self.scoreboard = SourceScoreboard() if score_sources else None
        self.telemetry = (
            telemetry if telemetry is not None else TelemetrySession.disabled()
        )
        registry = self.telemetry.registry
        self._clicks_total = registry.counter(
            "repro_pipeline_clicks_total", "Clicks processed by the pipeline"
        )
        self._duplicates_total = registry.counter(
            "repro_pipeline_duplicates_total", "Clicks rejected as duplicates"
        )
        self._valid_total = registry.counter(
            "repro_pipeline_valid_total", "Clicks accepted (and billed, if billing)"
        )
        self._budget_exhausted_total = registry.counter(
            "repro_pipeline_budget_exhausted_total",
            "Clicks dropped because an advertiser budget was exhausted",
        )
        self.set_detector(detector)

    def set_detector(self, detector) -> None:
        """Swap in a (restored) detector, rebinding the verdict dispatch.

        The pipeline talks to the detector exclusively through the
        unified protocol adapter (:func:`repro.detection.api.wrap_timed`),
        so any :class:`~repro.detection.api.Detector` /
        :class:`~repro.detection.api.TimedDetector` — or legacy object
        with just ``process``/``process_at`` — plugs in.
        """
        self.detector = detector
        self._observer = wrap_timed(detector)
        self._classify = self._observer.observe
        if self.telemetry.enabled:
            # Re-instrument so gauges track the detector now in service;
            # registry counters keep their running totals (the new
            # instrument baselines at the detector's current counters).
            self.telemetry.drop_instruments()
            self.telemetry.instrument_detector(detector)

    def _record_totals(
        self, processed: int, duplicates: int, valid: int, budget_exhausted: int
    ) -> None:
        """Fold one run/chunk's tallies into the pipeline counters."""
        if processed:
            self._clicks_total.inc(processed)
        if duplicates:
            self._duplicates_total.inc(duplicates)
        if valid:
            self._valid_total.inc(valid)
        if budget_exhausted:
            self._budget_exhausted_total.inc(budget_exhausted)

    def process_click(self, click: Click) -> bool:
        """Handle one click; returns True when rejected as duplicate."""
        identifier = self.scheme.identify(click)
        duplicate = self._classify(identifier, click.timestamp)
        if self.scoreboard is not None:
            self.scoreboard.record(click, duplicate)
        if self.billing is not None:
            if duplicate:
                self.billing.reject_duplicate(click)
            else:
                self.billing.charge(click)
        return duplicate

    def run(self, clicks: Iterable[Click]) -> PipelineResult:
        """Process a whole stream, tolerating exhausted budgets."""
        result = PipelineResult(scoreboard=self.scoreboard)
        # The verdict dispatch is bound once (set_detector), not
        # re-wrapped per click; hoist the remaining lookups too.
        process_click = self.process_click
        with self.telemetry.tracer.span("pipeline.run") as span:
            for click in clicks:
                result.processed += 1
                try:
                    duplicate = process_click(click)
                except BudgetError:
                    result.budget_exhausted += 1
                    continue
                if duplicate:
                    result.duplicates += 1
                else:
                    result.valid += 1
            span.annotate(
                processed=result.processed, duplicates=result.duplicates
            )
        self._record_totals(
            result.processed, result.duplicates, result.valid,
            result.budget_exhausted,
        )
        self.telemetry.advance(result.processed)
        if self.billing is not None:
            result.billing_summary = self.billing.summary()
        return result

    def run_batch(
        self,
        clicks: Iterable[Click],
        chunk_size: int = 4096,
        workers: Optional[int] = None,
    ) -> PipelineResult:
        """Process a stream through the detector's vectorized batch path.

        Clicks are consumed in chunks of ``chunk_size``; each chunk's
        identifiers are hashed and classified with one
        ``process_batch`` / ``process_batch_at`` call, then scoring and
        billing settle per click (billing raises per click, so budget
        accounting matches :meth:`run` exactly).  Detectors without a
        batch path fall back to the bound scalar classifier — results
        are identical either way, batch verdicts being bit-identical by
        construction.

        With ``workers=N`` the detector (which must be a
        ``ShardedDetector`` / ``TimeShardedDetector`` with ``N`` shards,
        or an already-parallel engine) is lifted into a multi-process
        engine for the duration of the run: each shard executes in its
        own worker process fed through shared-memory rings.  Afterwards
        the workers' final state is written back into the original
        detector, so the run is observationally identical to ``workers
        = None`` — just faster on multi-core hosts.
        """
        if workers is not None:
            # Deferred import: repro.parallel builds on this module.
            from ..parallel import lift_sharded

            original = self.detector
            engine = lift_sharded(original, workers)
            owned = engine is not original
            self.set_detector(engine)
            try:
                return self._run_batch_chunks(clicks, chunk_size)
            finally:
                if owned:
                    engine.close(sync=True)
                self.set_detector(original)
        return self._run_batch_chunks(clicks, chunk_size)

    def _run_batch_chunks(
        self, clicks: Iterable[Click], chunk_size: int
    ) -> PipelineResult:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        result = PipelineResult(scoreboard=self.scoreboard)
        observer = self._observer
        timed = observer.timed
        identify = self.scheme.identify
        scoreboard = self.scoreboard
        billing = self.billing
        telemetry = self.telemetry
        iterator = iter(clicks)
        while True:
            chunk = list(itertools.islice(iterator, chunk_size))
            if not chunk:
                break
            before = (
                result.processed, result.duplicates, result.valid,
                result.budget_exhausted,
            )
            with telemetry.tracer.span("pipeline.run_batch.chunk", size=len(chunk)):
                identifiers = np.fromiter(
                    (identify(click) for click in chunk),
                    dtype=np.uint64,
                    count=len(chunk),
                )
                timestamps = (
                    np.fromiter(
                        (click.timestamp for click in chunk),
                        dtype=np.float64,
                        count=len(chunk),
                    )
                    if timed
                    else None
                )
                verdicts = observer.observe_batch(identifiers, timestamps)
            for click, verdict in zip(chunk, verdicts):
                duplicate = bool(verdict)
                result.processed += 1
                if scoreboard is not None:
                    scoreboard.record(click, duplicate)
                if billing is not None:
                    try:
                        if duplicate:
                            billing.reject_duplicate(click)
                        else:
                            billing.charge(click)
                    except BudgetError:
                        result.budget_exhausted += 1
                        continue
                if duplicate:
                    result.duplicates += 1
                else:
                    result.valid += 1
            self._record_totals(
                result.processed - before[0],
                result.duplicates - before[1],
                result.valid - before[2],
                result.budget_exhausted - before[3],
            )
            telemetry.advance(len(chunk))
        if self.billing is not None:
            result.billing_summary = self.billing.summary()
        return result

    def run_identified_batch(
        self,
        identifiers: "np.ndarray",
        timestamps: Optional["np.ndarray"] = None,
    ) -> "np.ndarray":
        """Classify pre-projected identifiers; the network-serving hot path.

        The wire protocol of :mod:`repro.serve` ships ``(identifier,
        timestamp)`` pairs — the identifier scheme runs client-side, as
        the paper assumes ("each click has a predefined identifier") —
        so this path skips :class:`Click` materialization entirely and
        drives the detector through the same protocol adapter as
        :meth:`run_batch`.  Verdicts are bit-identical to
        :meth:`run_batch` over clicks projecting to the same
        identifiers, because detector state depends only on
        ``(identifier, timestamp)``.

        Pipeline click/duplicate counters and telemetry advance as
        usual; the scoreboard is *not* updated (it needs full clicks) and
        billing is refused outright — settling money against clicks
        that were never shipped would silently diverge from :meth:`run`.
        """
        if self.billing is not None:
            raise ConfigurationError(
                "run_identified_batch cannot settle billing; bill through "
                "run()/run_batch() with full clicks"
            )
        with self.telemetry.tracer.span(
            "pipeline.run_identified_batch", size=int(len(identifiers))
        ):
            verdicts = np.asarray(
                self._observer.observe_batch(identifiers, timestamps), dtype=bool
            )
        processed = int(verdicts.shape[0])
        duplicates = int(np.count_nonzero(verdicts))
        self._record_totals(processed, duplicates, processed - duplicates, 0)
        self.telemetry.advance(processed)
        return verdicts


def classify_stream(
    clicks: Iterable[Click],
    detector,
    scheme: IdentifierScheme = DEFAULT_SCHEME,
) -> List[bool]:
    """Bare classification: the detector's verdict per click, in order."""
    identify = scheme.identify
    observe = wrap_timed(detector).observe
    return [observe(identify(click), click.timestamp) for click in clicks]
