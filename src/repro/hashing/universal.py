"""Universal hash families: Carter–Wegman and multiply-shift.

These are the textbook constructions the paper's analysis assumes
("k independent uniform hash functions").

* :class:`CarterWegmanFamily` — ``h(x) = ((a*x + b) mod p) mod m`` with
  ``p = 2^61 - 1`` (a Mersenne prime), strongly 2-universal.  Exact but
  slower; used in tests as a distribution reference.
* :class:`MultiplyShiftFamily` — Dietzfelbinger's multiply-shift scheme
  for power-of-two ranges; extremely cheap per evaluation.
* :class:`SplitMixFamily` — a mixed-bits family based on the splitmix64
  finalizer.  Not formally universal but empirically uniform and the
  fastest to vectorize; it is the library default for experiments.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigurationError
from .family import HashFamily, derive_constants

_MASK64 = (1 << 64) - 1
_MERSENNE61 = (1 << 61) - 1


class CarterWegmanFamily(HashFamily):
    """Strongly 2-universal family ``((a*x + b) mod p) mod m``.

    ``a`` is drawn from ``[1, p)`` and ``b`` from ``[0, p)`` per function.
    Python arbitrary-precision integers keep the modular arithmetic exact.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        constants = derive_constants(seed, 2 * num_hashes)
        self._coefficients = [
            (constants[2 * i] % (_MERSENNE61 - 1) + 1, constants[2 * i + 1] % _MERSENNE61)
            for i in range(num_hashes)
        ]

    def indices(self, identifier: int) -> List[int]:
        x = identifier % _MERSENNE61
        m = self.num_buckets
        return [((a * x + b) % _MERSENNE61) % m for a, b in self._coefficients]


class MultiplyShiftFamily(HashFamily):
    """Dietzfelbinger multiply-shift: ``h(x) = (a*x mod 2^64) >> (64 - log2(m))``.

    Requires ``num_buckets`` to be a power of two; each ``a`` is a random
    odd 64-bit constant.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        if num_buckets & (num_buckets - 1):
            raise ConfigurationError(
                f"MultiplyShiftFamily needs a power-of-two range, got {num_buckets}"
            )
        self._shift = 64 - (num_buckets.bit_length() - 1)
        self._multipliers = [c | 1 for c in derive_constants(seed, num_hashes)]

    def indices(self, identifier: int) -> List[int]:
        x = identifier & _MASK64
        shift = self._shift
        if shift >= 64:  # num_buckets == 1
            return [0] * self.num_hashes
        return [((a * x) & _MASK64) >> shift for a in self._multipliers]

    def indices_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        xs = np.asarray(identifiers, dtype=np.uint64)
        out = np.empty((xs.shape[0], self.num_hashes), dtype=np.uint64)
        if self._shift >= 64:
            out.fill(0)
            return out
        with np.errstate(over="ignore"):
            for column, a in enumerate(self._multipliers):
                out[:, column] = (xs * np.uint64(a)) >> np.uint64(self._shift)
        return out


class SplitMixFamily(HashFamily):
    """Fast mixed-bits family: ``h_i(x) = mix(x ^ gamma_i) mod m``.

    ``mix`` is the splitmix64 finalizer; each function gets an independent
    64-bit xor constant ``gamma_i``.  The final ``mod m`` introduces a
    bias of at most ``m / 2^64`` which is negligible for every range used
    in this library.  This family vectorizes to a handful of numpy ops
    per function and is the default for all experiments.
    """

    _C1 = 0xBF58476D1CE4E5B9
    _C2 = 0x94D049BB133111EB

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        self._gammas = derive_constants(seed, num_hashes)

    @staticmethod
    def _mix(value: int) -> int:
        value = ((value ^ (value >> 30)) * SplitMixFamily._C1) & _MASK64
        value = ((value ^ (value >> 27)) * SplitMixFamily._C2) & _MASK64
        return value ^ (value >> 31)

    def indices(self, identifier: int) -> List[int]:
        x = identifier & _MASK64
        m = self.num_buckets
        mix = self._mix
        return [mix(x ^ gamma) % m for gamma in self._gammas]

    def indices_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        xs = np.asarray(identifiers, dtype=np.uint64)
        out = np.empty((xs.shape[0], self.num_hashes), dtype=np.uint64)
        c1 = np.uint64(self._C1)
        c2 = np.uint64(self._C2)
        m = np.uint64(self.num_buckets)
        with np.errstate(over="ignore"):
            for column, gamma in enumerate(self._gammas):
                z = xs ^ np.uint64(gamma)
                z = (z ^ (z >> np.uint64(30))) * c1
                z = (z ^ (z >> np.uint64(27))) * c2
                z = z ^ (z >> np.uint64(31))
                out[:, column] = z % m
        return out
