"""Universal hash families: Carter–Wegman and multiply-shift.

These are the textbook constructions the paper's analysis assumes
("k independent uniform hash functions").

* :class:`CarterWegmanFamily` — ``h(x) = ((a*x + b) mod p) mod m`` with
  ``p = 2^61 - 1`` (a Mersenne prime), strongly 2-universal.  Exact but
  slower; used in tests as a distribution reference.
* :class:`MultiplyShiftFamily` — Dietzfelbinger's multiply-shift scheme
  for power-of-two ranges; extremely cheap per evaluation.
* :class:`SplitMixFamily` — a mixed-bits family based on the splitmix64
  finalizer.  Not formally universal but empirically uniform and the
  fastest to vectorize; it is the library default for experiments.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigurationError
from .family import HashFamily, derive_constants

_MASK64 = (1 << 64) - 1
_MERSENNE61 = (1 << 61) - 1


class CarterWegmanFamily(HashFamily):
    """Strongly 2-universal family ``((a*x + b) mod p) mod m``.

    ``a`` is drawn from ``[1, p)`` and ``b`` from ``[0, p)`` per function.
    Python arbitrary-precision integers keep the modular arithmetic exact.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        constants = derive_constants(seed, 2 * num_hashes)
        self._coefficients = [
            (constants[2 * i] % (_MERSENNE61 - 1) + 1, constants[2 * i + 1] % _MERSENNE61)
            for i in range(num_hashes)
        ]

    def indices(self, identifier: int) -> List[int]:
        x = identifier % _MERSENNE61
        m = self.num_buckets
        return [((a * x + b) % _MERSENNE61) % m for a, b in self._coefficients]


class MultiplyShiftFamily(HashFamily):
    """Dietzfelbinger multiply-shift: ``h(x) = (a*x mod 2^64) >> (64 - log2(m))``.

    Requires ``num_buckets`` to be a power of two; each ``a`` is a random
    odd 64-bit constant.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        if num_buckets & (num_buckets - 1):
            raise ConfigurationError(
                f"MultiplyShiftFamily needs a power-of-two range, got {num_buckets}"
            )
        self._shift = 64 - (num_buckets.bit_length() - 1)
        self._multipliers = [c | 1 for c in derive_constants(seed, num_hashes)]
        self._multiplier_row = np.array(self._multipliers, dtype=np.uint64)[None, :]

    def indices(self, identifier: int) -> List[int]:
        x = identifier & _MASK64
        shift = self._shift
        if shift >= 64:  # num_buckets == 1
            return [0] * self.num_hashes
        return [((a * x) & _MASK64) >> shift for a in self._multipliers]

    def indices_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        xs = np.asarray(identifiers, dtype=np.uint64)
        if self._shift >= 64:
            return np.zeros((xs.shape[0], self.num_hashes), dtype=np.uint64)
        with np.errstate(over="ignore"):
            z = xs[:, None] * self._multiplier_row
            z >>= np.uint64(self._shift)
        return z


class SplitMixFamily(HashFamily):
    """Fast mixed-bits family: ``h_i(x) = mix(x ^ gamma_i) mod m``.

    ``mix`` is the splitmix64 finalizer; each function gets an independent
    64-bit xor constant ``gamma_i``.  The final ``mod m`` introduces a
    bias of at most ``m / 2^64`` which is negligible for every range used
    in this library.  This family vectorizes to a handful of numpy ops
    per function and is the default for all experiments.
    """

    _C1 = 0xBF58476D1CE4E5B9
    _C2 = 0x94D049BB133111EB

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        self._gammas = derive_constants(seed, num_hashes)
        self._gamma_row = np.array(self._gammas, dtype=np.uint64)[None, :]

    @staticmethod
    def _mix(value: int) -> int:
        value = ((value ^ (value >> 30)) * SplitMixFamily._C1) & _MASK64
        value = ((value ^ (value >> 27)) * SplitMixFamily._C2) & _MASK64
        return value ^ (value >> 31)

    def indices(self, identifier: int) -> List[int]:
        x = identifier & _MASK64
        m = self.num_buckets
        mix = self._mix
        return [mix(x ^ gamma) % m for gamma in self._gammas]

    def indices_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        xs = np.asarray(identifiers, dtype=np.uint64)
        m = np.uint64(self.num_buckets)
        # One 2-D pass over the (n, k) matrix; in-place ops keep it to a
        # single allocation beyond the output.
        with np.errstate(over="ignore"):
            z = xs[:, None] ^ self._gamma_row
            z ^= z >> np.uint64(30)
            z *= np.uint64(self._C1)
            z ^= z >> np.uint64(27)
            z *= np.uint64(self._C2)
            z ^= z >> np.uint64(31)
            z %= m
        return z
