"""Kirsch–Mitzenmacher double hashing.

Kirsch & Mitzenmacher ("Less Hashing, Same Performance") showed that a
Bloom filter loses no asymptotic false-positive performance when its
``k`` hash values are derived from just two base functions as
``g_i(x) = h1(x) + i * h2(x) mod m``.  The paper's algorithms hash every
element ``k`` times per operation, so this substitution matters for the
throughput benchmarks: it cuts the hashing cost from ``k`` evaluations
to two.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .family import HashFamily
from .universal import SplitMixFamily


class DoubleHashingFamily(HashFamily):
    """Derives ``k`` indices from two splitmix64 base functions.

    ``h2`` is forced odd when the range is even (and to be nonzero
    otherwise) so successive probes do not collapse onto one bucket.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        self._base = SplitMixFamily(2, num_buckets, seed)

    def _step(self, raw_step: int) -> int:
        m = self.num_buckets
        if m % 2 == 0:
            return raw_step | 1
        return raw_step if raw_step != 0 else 1

    def indices(self, identifier: int) -> List[int]:
        first, raw_step = self._base.indices(identifier)
        step = self._step(raw_step)
        m = self.num_buckets
        return [(first + i * step) % m for i in range(self.num_hashes)]

    def indices_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        base = self._base.indices_batch(identifiers)
        first = base[:, 0]
        step = base[:, 1]
        m = np.uint64(self.num_buckets)
        if self.num_buckets % 2 == 0:
            step = step | np.uint64(1)
        else:
            step = np.where(step == 0, np.uint64(1), step)
        out = np.empty((first.shape[0], self.num_hashes), dtype=np.uint64)
        with np.errstate(over="ignore"):
            for i in range(self.num_hashes):
                out[:, i] = (first + np.uint64(i) * step) % m
        return out
