"""Hash-function families used by every Bloom-filter variant.

The default family for experiments is :class:`SplitMixFamily` (fastest
to vectorize); :class:`CarterWegmanFamily` and :class:`TabulationFamily`
provide provably universal alternatives, and
:class:`DoubleHashingFamily` implements the Kirsch–Mitzenmacher
two-function optimization.
"""

from .double_hashing import DoubleHashingFamily
from .family import HashFamily, derive_constants
from .tabulation import TabulationFamily
from .universal import CarterWegmanFamily, MultiplyShiftFamily, SplitMixFamily
from .vectorized import chunked, iter_precomputed_indices, precompute_indices

#: The family experiments use unless told otherwise.
DEFAULT_FAMILY = SplitMixFamily


def make_family(
    num_hashes: int,
    num_buckets: int,
    seed: int = 0,
    kind: str = "splitmix",
) -> HashFamily:
    """Construct a hash family by name.

    ``kind`` is one of ``"splitmix"``, ``"carter-wegman"``,
    ``"tabulation"``, ``"multiply-shift"``, ``"double"``.
    """
    kinds = {
        "splitmix": SplitMixFamily,
        "carter-wegman": CarterWegmanFamily,
        "tabulation": TabulationFamily,
        "multiply-shift": MultiplyShiftFamily,
        "double": DoubleHashingFamily,
    }
    try:
        factory = kinds[kind]
    except KeyError:
        raise ValueError(f"unknown hash family kind {kind!r}; choose from {sorted(kinds)}") from None
    return factory(num_hashes, num_buckets, seed)


__all__ = [
    "HashFamily",
    "CarterWegmanFamily",
    "MultiplyShiftFamily",
    "SplitMixFamily",
    "TabulationFamily",
    "DoubleHashingFamily",
    "derive_constants",
    "precompute_indices",
    "iter_precomputed_indices",
    "chunked",
    "make_family",
    "DEFAULT_FAMILY",
]
