"""Base class for families of hash functions used by Bloom-filter variants.

Every filter in this library (classical, counting, stable, group, timing)
hashes each element with ``k`` independent functions into ``[0, num_buckets)``.
A :class:`HashFamily` bundles those ``k`` functions behind two entry
points:

* :meth:`HashFamily.indices` — scalar path used by the one-pass
  streaming algorithms (one element at a time, as the paper requires);
* :meth:`HashFamily.indices_batch` — vectorized path used by the
  experiment harness to pre-compute hash values for millions of stream
  elements at once (numpy ``uint64`` arithmetic).

Families are deterministic given ``(num_hashes, num_buckets, seed)`` so
experiments are reproducible.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigurationError

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One round of the splitmix64 finalizer (public-domain, Steele et al.).

    Used to derive well-mixed per-function constants from a single seed.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def splitmix64_batch(values: "np.ndarray") -> "np.ndarray":
    """Vectorized :func:`_splitmix64` over a uint64 array.

    Bit-identical to the scalar finalizer element by element (uint64
    arithmetic wraps exactly like the masked Python-int version).
    """
    values = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        values = values + np.uint64(0x9E3779B97F4A7C15)
        values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return values ^ (values >> np.uint64(31))


def derive_constants(seed: int, count: int) -> List[int]:
    """Derive ``count`` 64-bit constants from ``seed``, never zero."""
    constants = []
    state = seed & _MASK64
    while len(constants) < count:
        state = (state + 0x9E3779B97F4A7C15) & _MASK64
        constant = _splitmix64(state)
        if constant != 0:
            constants.append(constant)
    return constants


class HashFamily:
    """A family of ``num_hashes`` functions mapping ints to bucket indices.

    Subclasses implement :meth:`indices` and (optionally, for speed)
    :meth:`indices_batch`; the default batch implementation falls back to
    the scalar path.
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        if num_hashes < 1:
            raise ConfigurationError(f"num_hashes must be >= 1, got {num_hashes}")
        if num_buckets < 1:
            raise ConfigurationError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_hashes = num_hashes
        self.num_buckets = num_buckets
        self.seed = int(seed)

    def indices(self, identifier: int) -> List[int]:
        """Return the ``num_hashes`` bucket indices for one identifier."""
        raise NotImplementedError

    def indices_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        """Return an ``(n, num_hashes)`` uint64 array of bucket indices.

        The default implementation loops over the scalar path; fast
        subclasses override this with pure numpy arithmetic.
        """
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        out = np.empty((identifiers.shape[0], self.num_hashes), dtype=np.uint64)
        for row, identifier in enumerate(identifiers):
            out[row, :] = self.indices(int(identifier))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(num_hashes={self.num_hashes}, "
            f"num_buckets={self.num_buckets}, seed={self.seed})"
        )
