"""Simple tabulation hashing (Zobrist / Carter–Wegman tables).

Tabulation hashing splits a 64-bit key into 8 bytes and XORs one random
table entry per byte.  It is 3-independent, behaves like a fully random
function in virtually all Bloom-filter workloads (Patrascu & Thorup,
"The Power of Simple Tabulation Hashing"), and its batch form is pure
numpy table lookups, making it the fastest *provably strong* family in
this library.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .family import HashFamily, derive_constants

_BYTES_PER_KEY = 8
_TABLE_SIZE = 256


class TabulationFamily(HashFamily):
    """``k`` independent simple-tabulation hash functions.

    Each function owns 8 tables of 256 random 64-bit entries; the final
    value is reduced to ``[0, num_buckets)`` with a modulo (bias at most
    ``num_buckets / 2^64``).
    """

    def __init__(self, num_hashes: int, num_buckets: int, seed: int = 0) -> None:
        super().__init__(num_hashes, num_buckets, seed)
        rng = np.random.default_rng(derive_constants(seed, 1)[0])
        # Shape: (num_hashes, 8 byte positions, 256 byte values).
        self._tables = rng.integers(
            0,
            1 << 63,
            size=(num_hashes, _BYTES_PER_KEY, _TABLE_SIZE),
            dtype=np.uint64,
        )
        # Python-int copy for the scalar path (avoids numpy scalar overhead).
        self._tables_py = [
            [[int(v) for v in position] for position in function]
            for function in self._tables
        ]

    def indices(self, identifier: int) -> List[int]:
        x = identifier & ((1 << 64) - 1)
        key_bytes = [(x >> (8 * b)) & 0xFF for b in range(_BYTES_PER_KEY)]
        m = self.num_buckets
        out = []
        for function in self._tables_py:
            value = 0
            for position, byte in enumerate(key_bytes):
                value ^= function[position][byte]
            out.append(value % m)
        return out

    def indices_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        xs = np.asarray(identifiers, dtype=np.uint64)
        out = np.empty((xs.shape[0], self.num_hashes), dtype=np.uint64)
        byte_columns = [
            ((xs >> np.uint64(8 * b)) & np.uint64(0xFF)).astype(np.intp)
            for b in range(_BYTES_PER_KEY)
        ]
        m = np.uint64(self.num_buckets)
        for column in range(self.num_hashes):
            value = self._tables[column, 0][byte_columns[0]]
            for b in range(1, _BYTES_PER_KEY):
                value = value ^ self._tables[column, b][byte_columns[b]]
            out[:, column] = value % m
        return out
