"""Batch-hashing helpers for the experiment harness.

The paper's evaluation feeds streams of ``20 * N`` elements through each
algorithm.  Hashing dominates the Python-level cost, so the experiment
runner pre-computes all hash indices for a whole stream with one call to
:func:`precompute_indices` and then replays the one-pass algorithm with
plain array reads.  The algorithms themselves remain strictly one-pass;
only the hash arithmetic is hoisted.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .family import HashFamily


def precompute_indices(family: HashFamily, identifiers: Iterable[int]) -> "np.ndarray":
    """Hash every identifier with every function of ``family``.

    Returns an ``(n, k)`` array where row ``i`` holds the ``k`` bucket
    indices of the ``i``-th identifier, in hash-function order.  Rows are
    bitwise identical to what ``family.indices`` would return element by
    element (verified by tests), so replaying from this table is exactly
    equivalent to hashing online.
    """
    array = np.fromiter(identifiers, dtype=np.uint64)
    return family.indices_batch(array)


def chunked(array: "np.ndarray", chunk_size: int) -> Iterable["np.ndarray"]:
    """Yield successive ``chunk_size`` slices of ``array``.

    Used to bound peak memory when precomputing indices for very long
    streams (each chunk is ``chunk_size * k * 8`` bytes).
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, len(array), chunk_size):
        yield array[start : start + chunk_size]
