"""Batch-hashing helpers for the experiment harness.

The paper's evaluation feeds streams of ``20 * N`` elements through each
algorithm.  Hashing dominates the Python-level cost, so the experiment
runner pre-computes all hash indices for a whole stream with one call to
:func:`precompute_indices` and then replays the one-pass algorithm with
plain array reads.  The algorithms themselves remain strictly one-pass;
only the hash arithmetic is hoisted.

Both helpers accept arbitrary iterables — arrays, sequences, or lazy
generators.  Lazy inputs are consumed chunk-at-a-time (``np.fromiter``
with a ``count`` hint whenever the length is known), so a
multi-million-element stream never has to be materialized as a Python
list just to be hashed.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional

import numpy as np

from .family import HashFamily


def precompute_indices(
    family: HashFamily,
    identifiers: Iterable[int],
    chunk_size: Optional[int] = None,
) -> "np.ndarray":
    """Hash every identifier with every function of ``family``.

    Returns an ``(n, k)`` array where row ``i`` holds the ``k`` bucket
    indices of the ``i``-th identifier, in hash-function order.  Rows are
    bitwise identical to what ``family.indices`` would return element by
    element (verified by tests), so replaying from this table is exactly
    equivalent to hashing online.

    ``identifiers`` may be any iterable, including a one-shot generator.
    With ``chunk_size`` set, the input is hashed ``chunk_size`` elements
    at a time and only the (much smaller) identifier chunks are ever
    buffered; the full ``(n, k)`` result is still returned.
    """
    if chunk_size is not None:
        blocks = list(iter_precomputed_indices(family, identifiers, chunk_size))
        if not blocks:
            return np.empty((0, family.num_hashes), dtype=np.uint64)
        return np.concatenate(blocks, axis=0)
    if isinstance(identifiers, np.ndarray):
        return family.indices_batch(np.asarray(identifiers, dtype=np.uint64))
    try:
        count = len(identifiers)  # type: ignore[arg-type]
    except TypeError:
        count = -1
    array = np.fromiter(identifiers, dtype=np.uint64, count=count)
    return family.indices_batch(array)


def iter_precomputed_indices(
    family: HashFamily,
    identifiers: Iterable[int],
    chunk_size: int = 4096,
) -> Iterator["np.ndarray"]:
    """Stream ``(n_chunk, k)`` index blocks instead of one full table.

    The lazy complement of :func:`precompute_indices`: the concatenation
    of the yielded blocks is exactly its ``(n, k)`` result, but nothing
    larger than one block (``chunk_size * k * 8`` bytes) is ever alive —
    so a consumer that replays blocks as they arrive (the experiment
    runner, the serving engine) holds no whole-stream table no matter
    how long the stream runs.  Array inputs are sliced zero-copy; lazy
    iterables are consumed a chunk at a time.
    """
    for block in chunked(identifiers, chunk_size):
        yield family.indices_batch(block)


def chunked(values: Iterable[int], chunk_size: int) -> Iterator["np.ndarray"]:
    """Yield successive ``chunk_size``-element uint64 arrays of ``values``.

    Used to bound peak memory when precomputing indices for very long
    streams (each chunk is ``chunk_size * k * 8`` bytes).  Arrays are
    sliced (zero-copy views); other iterables — lists, generators — are
    consumed lazily, one ``np.fromiter`` per chunk, with an exact
    ``count`` hint when the input's length is known.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if isinstance(values, np.ndarray):
        for start in range(0, len(values), chunk_size):
            yield values[start : start + chunk_size]
        return
    try:
        total = len(values)  # type: ignore[arg-type]
    except TypeError:
        total = None
    iterator = iter(values)
    if total is not None:
        for start in range(0, total, chunk_size):
            count = min(chunk_size, total - start)
            yield np.fromiter(
                itertools.islice(iterator, count), dtype=np.uint64, count=count
            )
        return
    while True:
        block = np.fromiter(itertools.islice(iterator, chunk_size), dtype=np.uint64)
        if block.size == 0:
            return
        yield block
