"""Exponential Histograms for sliding-window counting (Datar, Gionis,
Indyk & Motwani, SODA 2002).

The foundational sliding-window technique the paper builds its context
on (§1.2, §2.3: "Datar et al. proposed an algorithm to solve the
Bit-Counting problem over sliding windows using Exponential
Histograms").  An EH maintains an ``(1 + epsilon)``-approximate count
of the 1s among the last ``N`` stream bits using
``O((1/epsilon) * log^2 N)`` bits of state.

Mechanics: 1-bits are stored as *buckets* carrying (timestamp, size);
sizes are powers of two; at most ``ceil(1/epsilon) + 1`` buckets of
each size are kept — inserting one more merges the two oldest of that
size into one bucket of double size.  Buckets whose timestamp leaves
the window are dropped; the count estimate is the sum of all bucket
sizes minus half the oldest bucket (whose overlap with the window is
unknown).

The library uses EH for windowed *rate* statistics in the fraud
scoreboard extensions and as a tested, reusable substrate; its error
invariant is property-tested against an exact bit queue.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Tuple

from ..errors import ConfigurationError


class ExponentialHistogram:
    """Approximate count of 1s among the last ``window_size`` bits.

    Parameters
    ----------
    window_size:
        Sliding window length ``N`` in stream positions.
    epsilon:
        Relative-error bound; the estimate is within ``epsilon * true``
        of the true count (for true counts > 0).
    """

    def __init__(self, window_size: int, epsilon: float = 0.1) -> None:
        if window_size < 1:
            raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
        if not 0.0 < epsilon <= 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1], got {epsilon}")
        self.window_size = window_size
        self.epsilon = epsilon
        #: Max buckets per size class: k/2 + 1 with k = ceil(1/eps) per
        #: the DGIM analysis (we use the common k + 1 formulation).
        self._max_per_size = max(1, math.ceil(1.0 / epsilon)) + 1
        #: Buckets as (closing_timestamp, size), newest first.
        self._buckets: Deque[Tuple[int, int]] = deque()
        self._position = -1
        self._total = 0  # sum of bucket sizes

    def observe(self, bit: bool) -> None:
        """Consume the next stream element (True = a 1-bit)."""
        self._position += 1
        self._expire()
        if not bit:
            return
        self._buckets.appendleft((self._position, 1))
        self._total += 1
        self._merge()

    def _expire(self) -> None:
        cutoff = self._position - self.window_size
        while self._buckets and self._buckets[-1][0] <= cutoff:
            _, size = self._buckets.pop()
            self._total -= size

    def _merge(self) -> None:
        # Walk size classes from smallest; merge the two oldest buckets
        # of any class that exceeds its cap.  Deque order is newest
        # first, so equal-size runs are contiguous.
        buckets = list(self._buckets)
        changed = True
        while changed:
            changed = False
            index = 0
            while index < len(buckets):
                size = buckets[index][1]
                run_end = index
                while run_end < len(buckets) and buckets[run_end][1] == size:
                    run_end += 1
                if run_end - index > self._max_per_size:
                    # Merge the two OLDEST buckets of this size (the last
                    # two of the run); keep the newer timestamp of the
                    # pair (the merged bucket closes when the newer one
                    # closed).
                    older_ts, _ = buckets[run_end - 1]
                    newer_ts, _ = buckets[run_end - 2]
                    merged = (newer_ts, size * 2)
                    del buckets[run_end - 2 : run_end]
                    # Insert the merged bucket at the head of the next
                    # size class, preserving newest-first order.
                    buckets.insert(run_end - 2, merged)
                    changed = True
                    break
                index = run_end
        self._buckets = deque(buckets)

    def estimate(self) -> int:
        """Approximate number of 1s in the current window."""
        self._expire()
        if not self._buckets:
            return 0
        oldest_size = self._buckets[-1][1]
        return self._total - oldest_size // 2

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    @property
    def memory_bits(self) -> int:
        """Modeled cost: each bucket stores a timestamp and a size class."""
        timestamp_bits = max(1, (2 * self.window_size).bit_length())
        size_bits = max(1, self.window_size.bit_length().bit_length() + 3)
        return self.num_buckets * (timestamp_bits + size_bits)


class SlidingWindowCounter:
    """Approximate event counter over a sliding window, built on EH.

    Generalizes the bit-counting EH to "how many of the last N arrivals
    satisfied a predicate" — e.g. how many of a source's last N clicks
    were flagged duplicates — at ``O(log^2 N / epsilon)`` bits instead
    of a full history.
    """

    def __init__(self, window_size: int, epsilon: float = 0.1) -> None:
        self._histogram = ExponentialHistogram(window_size, epsilon)
        self._arrivals = 0

    def observe(self, event: bool) -> None:
        self._histogram.observe(event)
        self._arrivals += 1

    def count(self) -> int:
        return self._histogram.estimate()

    def rate(self) -> float:
        """Approximate fraction of events among in-window arrivals."""
        window = min(self._arrivals, self._histogram.window_size)
        if window == 0:
            return 0.0
        return min(1.0, self._histogram.estimate() / window)

    @property
    def memory_bits(self) -> int:
        return self._histogram.memory_bits


def exact_window_count(bits: List[bool], window_size: int) -> int:
    """Reference implementation for tests: exact 1s in the last window."""
    return sum(bits[-window_size:])
