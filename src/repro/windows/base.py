"""Decaying-window model abstractions (§1.2 of the paper).

A *window model* answers one question: given the stream position (or
time) at which an element arrived, is that element still part of the
current window?  The exact baselines and the ground-truth labeler are
defined directly on these semantics, and every sketch algorithm in
:mod:`repro.core` is tested against them.

Two flavours exist, mirroring the paper:

* **count-based** — positions are arrival indices 0, 1, 2, …; the window
  holds (roughly) the last ``N`` arrivals;
* **time-based** — positions are timestamps; the window holds arrivals
  from the last ``T`` time units.
"""

from __future__ import annotations

from ..errors import ConfigurationError, StreamError


class CountBasedWindow:
    """Base class for count-based decaying windows.

    Subclasses define :meth:`is_active`.  :meth:`observe` advances the
    stream by one arrival and returns the arrival's position.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"window size must be >= 1, got {size}")
        self.size = size
        #: Position of the most recent arrival; -1 before any arrival.
        self.position = -1

    def observe(self) -> int:
        """Record one arrival and return its position."""
        self.position += 1
        return self.position

    def is_active(self, position: int) -> bool:
        """Whether the element that arrived at ``position`` is in-window."""
        raise NotImplementedError

    def expiry_position(self, position: int) -> int:
        """First stream position at which ``position`` is *no longer* active."""
        raise NotImplementedError


class TimeBasedWindow:
    """Base class for time-based decaying windows.

    Timestamps must be non-decreasing; :meth:`observe_at` enforces this
    and raises :class:`~repro.errors.StreamError` on regressions, since
    silently accepting out-of-order time would corrupt expiry logic.
    """

    def __init__(self, duration: float) -> None:
        if duration <= 0:
            raise ConfigurationError(f"window duration must be > 0, got {duration}")
        self.duration = duration
        self.current_time: float | None = None

    def observe_at(self, timestamp: float) -> float:
        if self.current_time is not None and timestamp < self.current_time:
            raise StreamError(
                f"timestamp regressed: {timestamp} after {self.current_time}"
            )
        self.current_time = timestamp
        return timestamp

    def is_active(self, timestamp: float) -> bool:
        raise NotImplementedError
