"""Landmark windows (§1.2).

The stream is chopped into consecutive epochs of ``N`` arrivals (or
``T`` time units); all elements of an epoch expire together when the
next epoch starts.  This is the model under which classical Bloom
filters deploy directly (Metwally et al. [21]): keep one filter per
epoch and clear it at the boundary.
"""

from __future__ import annotations

from .base import CountBasedWindow, TimeBasedWindow


class LandmarkWindow(CountBasedWindow):
    """Count-based landmark window of ``size`` arrivals per epoch."""

    def epoch_of(self, position: int) -> int:
        return position // self.size

    def current_epoch(self) -> int:
        return max(self.position, 0) // self.size

    def is_active(self, position: int) -> bool:
        if position < 0 or position > self.position:
            return False
        return self.epoch_of(position) == self.epoch_of(self.position)

    def expiry_position(self, position: int) -> int:
        return (self.epoch_of(position) + 1) * self.size

    def at_epoch_boundary(self) -> bool:
        """True right after the first arrival of a new epoch."""
        return self.position >= 0 and self.position % self.size == 0


class TimeBasedLandmarkWindow(TimeBasedWindow):
    """Time-based landmark window: epochs of ``duration`` time units."""

    def epoch_of(self, timestamp: float) -> int:
        return int(timestamp // self.duration)

    def is_active(self, timestamp: float) -> bool:
        if self.current_time is None or timestamp > self.current_time:
            return False
        return self.epoch_of(timestamp) == self.epoch_of(self.current_time)
