"""Decaying-window models: landmark, jumping, sliding (§1.2)."""

from .base import CountBasedWindow, TimeBasedWindow
from .exponential_histogram import (
    ExponentialHistogram,
    SlidingWindowCounter,
    exact_window_count,
)
from .jumping import JumpingWindow, TimeBasedJumpingWindow
from .landmark import LandmarkWindow, TimeBasedLandmarkWindow
from .sliding import SlidingWindow, TimeBasedSlidingWindow

__all__ = [
    "CountBasedWindow",
    "TimeBasedWindow",
    "LandmarkWindow",
    "TimeBasedLandmarkWindow",
    "JumpingWindow",
    "TimeBasedJumpingWindow",
    "SlidingWindow",
    "TimeBasedSlidingWindow",
    "ExponentialHistogram",
    "SlidingWindowCounter",
    "exact_window_count",
]
