"""Jumping windows (Zhu & Shasha, 2002; §1.2 of the paper).

A window of ``N`` arrivals is divided into ``Q`` equal sub-windows of
``N/Q`` arrivals.  The window "jumps" a sub-window at a time: when a new
sub-window begins, the oldest one expires as a block.  At any moment the
active window is the current (possibly partial) sub-window plus the
``Q - 1`` before it, so it spans between ``(Q-1)·N/Q + 1`` and ``N``
arrivals — the compromise between landmark and sliding windows.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .base import CountBasedWindow, TimeBasedWindow


class JumpingWindow(CountBasedWindow):
    """Count-based jumping window: ``size`` arrivals in ``num_subwindows`` blocks.

    ``size`` must divide evenly into ``num_subwindows`` blocks, exactly as
    the paper assumes ("evenly divide the entire jumping window").
    """

    def __init__(self, size: int, num_subwindows: int) -> None:
        super().__init__(size)
        if num_subwindows < 1:
            raise ConfigurationError(
                f"num_subwindows must be >= 1, got {num_subwindows}"
            )
        if size % num_subwindows != 0:
            raise ConfigurationError(
                f"window size {size} is not divisible by {num_subwindows} sub-windows"
            )
        self.num_subwindows = num_subwindows
        self.subwindow_size = size // num_subwindows

    def subwindow_of(self, position: int) -> int:
        """Index of the sub-window that ``position`` belongs to."""
        return position // self.subwindow_size

    def current_subwindow(self) -> int:
        return max(self.position, 0) // self.subwindow_size

    def is_active(self, position: int) -> bool:
        if position < 0 or position > self.position:
            return False
        return (
            self.subwindow_of(self.position) - self.subwindow_of(position)
            < self.num_subwindows
        )

    def expiry_position(self, position: int) -> int:
        """An element expires when its sub-window falls ``Q`` behind."""
        return (self.subwindow_of(position) + self.num_subwindows) * self.subwindow_size

    def at_subwindow_boundary(self) -> bool:
        """True right after the first arrival of a new sub-window."""
        return self.position >= 0 and self.position % self.subwindow_size == 0

    def active_span(self) -> int:
        """Number of arrivals currently covered by the window."""
        if self.position < 0:
            return 0
        oldest_active = max(
            0, (self.subwindow_of(self.position) - self.num_subwindows + 1)
        ) * self.subwindow_size
        return self.position - oldest_active + 1


class TimeBasedJumpingWindow(TimeBasedWindow):
    """Time-based jumping window: ``duration`` split into ``Q`` time blocks."""

    def __init__(self, duration: float, num_subwindows: int) -> None:
        super().__init__(duration)
        if num_subwindows < 1:
            raise ConfigurationError(
                f"num_subwindows must be >= 1, got {num_subwindows}"
            )
        self.num_subwindows = num_subwindows
        self.subwindow_duration = duration / num_subwindows

    def subwindow_of(self, timestamp: float) -> int:
        return int(timestamp // self.subwindow_duration)

    def is_active(self, timestamp: float) -> bool:
        if self.current_time is None or timestamp > self.current_time:
            return False
        return (
            self.subwindow_of(self.current_time) - self.subwindow_of(timestamp)
            < self.num_subwindows
        )
