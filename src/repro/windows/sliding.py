"""Sliding windows (Datar et al., SODA 2002; §1.2 of the paper).

The strictest decaying model: the window always contains exactly the
last ``N`` arrivals (count-based) or everything from the last ``T``
time units (time-based), and elements expire one by one.
"""

from __future__ import annotations

from .base import CountBasedWindow, TimeBasedWindow


class SlidingWindow(CountBasedWindow):
    """Count-based sliding window over the last ``size`` arrivals."""

    def is_active(self, position: int) -> bool:
        if position < 0 or position > self.position:
            return False
        return self.position - position < self.size

    def expiry_position(self, position: int) -> int:
        return position + self.size

    def active_span(self) -> int:
        if self.position < 0:
            return 0
        return min(self.position + 1, self.size)


class TimeBasedSlidingWindow(TimeBasedWindow):
    """Time-based sliding window over the last ``duration`` time units.

    An element at timestamp ``t`` is active while ``now - t < duration``
    (half-open: an element exactly ``duration`` old has expired).
    """

    def is_active(self, timestamp: float) -> bool:
        if self.current_time is None or timestamp > self.current_time:
            return False
        return self.current_time - timestamp < self.duration
