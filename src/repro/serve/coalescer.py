"""Time/size-bounded request coalescing for the ingest server.

Many small client batches amortize poorly: the vectorized detectors
want thousands of identifiers per call, but a latency-sensitive client
may ship a few hundred at a time.  The :class:`Coalescer` sits between
the connection readers and the detection engine and groups pending
requests into engine batches under two bounds:

* **size** — as soon as the pending clicks reach ``max_batch``, the
  group is emitted (an engine batch therefore holds at most
  ``max_batch`` clicks, except when a *single* request alone exceeds it;
  requests are never split, because each maps to exactly one verdict
  frame).
* **time** — the oldest pending request waits at most ``max_delay``
  seconds; when the deadline passes, whatever is pending is emitted
  short.

Flush semantics deliberately mirror the batch-shape contract of
:func:`repro.streams.io.read_batches`: emitted groups are never empty,
never padded, and a final :meth:`flush` emits the ``1 .. max_batch``
leftovers as-is — so draining the coalescer, like exhausting a stream
file, loses nothing and invents nothing.

The class is synchronous and event-loop-free on purpose: the server
drives it from its engine task, and the unit tests drive it with a fake
clock.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["Coalescer"]


class Coalescer:
    """Group (item, click-count) pairs into bounded engine batches."""

    def __init__(
        self,
        max_batch: int = 8192,
        max_delay: float = 0.005,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._clock = clock
        self._pending: List[Tuple[Any, int]] = []
        self._pending_clicks = 0
        self._oldest_at: Optional[float] = None

    @property
    def pending_items(self) -> int:
        return len(self._pending)

    @property
    def pending_clicks(self) -> int:
        return self._pending_clicks

    @property
    def deadline(self) -> Optional[float]:
        """Clock time by which the pending group must be emitted.

        ``None`` when nothing is pending — the engine can then wait on
        its queue without a timeout.
        """
        if self._oldest_at is None:
            return None
        return self._oldest_at + self.max_delay

    def add(self, item: Any, count: int) -> Optional[List[Any]]:
        """Admit one request of ``count`` clicks.

        Returns the completed group when this request fills it (pending
        clicks reached ``max_batch``), else ``None`` — the request is
        held for a later :meth:`add`, :meth:`poll`, or :meth:`flush`.
        ``count`` may be zero (an empty batch still owes a verdict
        frame); zero-click items never delay emission on their own.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if self._oldest_at is None:
            self._oldest_at = self._clock()
        self._pending.append((item, count))
        self._pending_clicks += count
        if self._pending_clicks >= self.max_batch:
            return self.flush()
        return None

    def requeue(self, pairs: List[Tuple[Any, int]]) -> None:
        """Put an emitted group *back*, ahead of everything pending.

        The engine-restart path: a group handed out by :meth:`add`/
        :meth:`flush` whose processing was interrupted before it
        touched the detector is returned intact, in its original order,
        at the front — so the restarted consumer classifies it first
        and admission order is preserved.  The requeued group counts
        as the oldest pending work: the deadline clock restarts now
        (the original wait was already paid once).
        """
        if not pairs:
            return
        for _item, count in pairs:
            if count < 0:
                raise ConfigurationError(f"count must be >= 0, got {count}")
        self._pending[:0] = pairs
        self._pending_clicks += sum(count for _item, count in pairs)
        if self._oldest_at is None:
            self._oldest_at = self._clock()

    def poll(self) -> Optional[List[Any]]:
        """Emit the pending group iff its deadline has passed."""
        deadline = self.deadline
        if deadline is not None and self._clock() >= deadline:
            return self.flush()
        return None

    def flush(self) -> Optional[List[Any]]:
        """Emit whatever is pending, short or not; ``None`` when empty.

        The drain path: like the final short batch of
        :func:`repro.streams.io.read_batches`, leftovers come out
        exactly as accumulated and an empty coalescer emits nothing.
        """
        if not self._pending:
            return None
        group = [item for item, _count in self._pending]
        self._pending = []
        self._pending_clicks = 0
        self._oldest_at = None
        return group
