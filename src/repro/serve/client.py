"""Synchronous client for the click-ingest server, plus a load generator.

:class:`ServeClient` speaks the binary protocol over a plain blocking
socket.  The API is deliberately two-phase so callers can *pipeline*:

>>> client = ServeClient("127.0.0.1", port)
>>> first = client.submit(identifiers_a, timestamps_a)
>>> second = client.submit(identifiers_b, timestamps_b)   # in flight together
>>> verdicts_a = client.collect(first)
>>> verdicts_b = client.collect(second)

``send`` is submit+collect for the simple case, and ``classify``
projects full :class:`~repro.streams.click.Click` objects through an
identifier scheme first (the vectorized
:meth:`~repro.streams.click.IdentifierScheme.identify_batch`, so the
projection adds no per-click Python work).

Delivery semantics (docs/serving.md §7)
---------------------------------------
Every connection opens with a ``HELLO`` handshake announcing a stable
``client_id``; request ids double as the client's monotone
``batch_seq``, so ``(client_id, batch_seq)`` is an idempotency key the
server remembers.  With a :class:`RetryPolicy`, a dropped connection or
missed deadline triggers automatic reconnect with jittered exponential
backoff: the client replays every submitted-but-unanswered frame, and
the server either re-serves the cached response or reports the batch
already applied — **a retried batch never mutates detector state
twice**.  Failures surface as typed errors carrying the unresolved
request ids: :class:`~repro.errors.ConnectionLost`,
:class:`~repro.errors.DeadlineExceeded`,
:class:`~repro.errors.RetriesExhausted`.  After the retry budget is
exhausted a circuit breaker fast-fails further calls (without touching
the network) until ``breaker_reset`` seconds pass, so a dead server
costs callers microseconds, not timeouts.

Responses arrive in request order (a server guarantee), so ``collect``
just reads the next frame; an ``OVERLOADED`` response surfaces as
:class:`~repro.errors.OverloadedError` (back off and resubmit — the
server did *not* process the batch) and an ``ERROR`` response as
:class:`~repro.errors.ProtocolError` (the batch was refused without
touching detector state).

Run the module for a load generator::

    python -m repro.serve.client --port 9000 --clicks 1000000

It drives a bounded pipeline of synthetic batches (or a stream file via
``--input``), retries overloads with exponential backoff, counts hard
``ERROR`` refusals instead of retrying them forever, and reports
sustained clicks/s.
"""

from __future__ import annotations

import random
import socket
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    ConfigurationError,
    ConnectionLost,
    DeadlineExceeded,
    OverloadedError,
    ProtocolError,
    RetriesExhausted,
)
from ..streams.click import DEFAULT_SCHEME, IdentifierScheme
from ..telemetry.requesttrace import SpanShardWriter, new_span_id, new_trace_id
from .protocol import (
    FRAME_ERROR,
    FRAME_HELLO_ACK,
    FRAME_OVERLOADED,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RETRY,
    FRAME_VERDICTS,
    HEADER,
    MAGIC,
    decode_header,
    decode_hello_payload,
    decode_verdicts_payload,
    encode_batch,
    encode_frame,
    encode_hello,
)

__all__ = ["ServeClient", "RetryPolicy", "run_load"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`ServeClient` survives a flaky server or network.

    ``max_retries`` bounds reconnect attempts per delivery operation;
    between attempts the client sleeps ``base_backoff * 2**n`` capped at
    ``max_backoff``, with up to ``jitter`` (a fraction) shaved off at
    random so a fleet of clients does not reconnect in lockstep.  Pass
    ``seed`` to make the jitter deterministic (tests, chaos soaks).

    After ``breaker_failures`` consecutive exhausted budgets the
    circuit breaker opens for ``breaker_reset`` seconds: calls fail
    immediately with :class:`~repro.errors.ConnectionLost` instead of
    burning a full retry cycle against a server that is down.  The
    first call after the window closes is the half-open probe.
    """

    max_retries: int = 6
    base_backoff: float = 0.05
    max_backoff: float = 2.0
    jitter: float = 0.5
    breaker_failures: int = 1
    breaker_reset: float = 5.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ConfigurationError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.base_backoff < 0 or self.max_backoff < self.base_backoff:
            raise ConfigurationError(
                "need 0 <= base_backoff <= max_backoff, got "
                f"{self.base_backoff}/{self.max_backoff}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.breaker_failures < 1:
            raise ConfigurationError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Seconds to sleep before reconnect ``attempt`` (1-based)."""
        delay = min(self.base_backoff * (2 ** (attempt - 1)), self.max_backoff)
        return delay * (1.0 - self.jitter * rng.random())


class ServeClient:
    """Blocking binary-protocol client; one logical connection.

    ``timeout`` is both the connect timeout and the per-response
    deadline.  ``retry=None`` (the default) keeps the fail-fast
    single-connection behaviour — errors are still typed, but nothing
    is retried; pass a :class:`RetryPolicy` for automatic reconnect
    with exactly-once redelivery.  ``client_id`` is the stable
    idempotency identity; it must survive reconnects (the default is a
    fresh random id per client object, which does exactly that).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        retry: Optional[RetryPolicy] = None,
        client_id: Optional[int] = None,
        registry=None,
        trace_dir: Optional[str] = None,
        trace_sample: float = 0.0,
    ) -> None:
        if not 0.0 <= trace_sample <= 1.0:
            raise ConfigurationError(
                f"trace_sample must be in [0, 1], got {trace_sample}"
            )
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry
        # Sampled distributed tracing: every 1/trace_sample-th submit
        # (deterministic interval, not a coin flip — reproducible and
        # evenly spread) ships a FLAG_TRACE context and, once collected,
        # lands a "client.request" root span in this shard.
        self._spans = (
            SpanShardWriter(str(trace_dir), "client")
            if trace_dir is not None and trace_sample > 0.0
            else None
        )
        self._trace_every = (
            max(1, round(1.0 / trace_sample)) if trace_sample > 0.0 else 0
        )
        self._submits = 0
        #: request_id → (trace_id, span_id, wall_start, perf_start) for
        #: sampled submits whose response has not been collected yet.
        self._trace_pending: Dict[int, Tuple[int, int, float, float]] = {}
        self._rng = random.Random(retry.seed if retry is not None else None)
        self.client_id = (
            client_id if client_id is not None else self._rng.getrandbits(63) | 1
        )
        self._next_id = 1
        #: (request_id, encoded frame) submitted but not yet collected,
        #: FIFO — the redelivery buffer: everything here is resent
        #: verbatim after a reconnect.
        self._pending: Deque[Tuple[int, bytes]] = deque()
        self._closed = False
        self._sock: Optional[socket.socket] = None
        #: Highest batch_seq the server acknowledged at the last HELLO.
        self.last_acked_seq = 0
        self._breaker_failures = 0
        self._breaker_open_until = 0.0
        self._retries_total = (
            registry.counter(
                "repro_serve_retries_total",
                "Client reconnect attempts on the retry path",
            )
            if registry is not None
            else None
        )
        self._breaker_fastfails_total = (
            registry.counter(
                "repro_serve_breaker_fastfails_total",
                "Calls refused immediately while the circuit breaker was open",
            )
            if registry is not None
            else None
        )
        try:
            self._connect()
        except (ConnectionLost, DeadlineExceeded) as error:
            self._redeliver(error)  # retry the dial, or raise typed
        except OSError as error:
            self._redeliver(
                ConnectionLost(f"connect to {host}:{port} failed: {error}")
            )

    # -- wire helpers --------------------------------------------------

    def _pending_ids(self) -> Tuple[int, ...]:
        return tuple(request_id for request_id, _frame in self._pending)

    def _connect(self) -> None:
        """Dial, speak the magic + HELLO handshake, resend pending."""
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        try:
            sock.sendall(MAGIC + encode_hello(0, self.client_id))
            frame_type, _echoed, payload = self._read_frame()
            if frame_type != FRAME_HELLO_ACK:
                raise ProtocolError(
                    f"expected HELLO_ACK, got frame 0x{frame_type:02X}"
                )
            self.last_acked_seq = decode_hello_payload(payload)
            # Redeliver everything unanswered, oldest first; the
            # server's dedup window guarantees none applies twice.
            for _request_id, frame in self._pending:
                sock.sendall(frame)
        except (OSError, ConnectionLost, DeadlineExceeded):
            self._teardown_socket()
            raise

    def _teardown_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _require_socket(self) -> socket.socket:
        if self._closed:
            raise ConfigurationError("client is closed")
        self._check_breaker()
        if self._sock is None:
            self._redeliver(ConnectionLost(
                "not connected", pending=self._pending_ids()
            ))
        return self._sock

    def _recv_exactly(self, count: int) -> bytes:
        chunks = []
        while count:
            try:
                chunk = self._sock.recv(count)
            except socket.timeout as error:
                raise DeadlineExceeded(
                    f"no response within {self._timeout}s",
                    pending=self._pending_ids(),
                ) from error
            except OSError as error:
                raise ConnectionLost(
                    f"connection failed mid-frame: {error}",
                    pending=self._pending_ids(),
                ) from error
            if not chunk:
                raise ConnectionLost(
                    "server closed the connection mid-frame",
                    pending=self._pending_ids(),
                )
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> Tuple[int, int, bytes]:
        frame_type, request_id, payload_len = decode_header(
            self._recv_exactly(HEADER.size), expect_response=True
        )
        return frame_type, request_id, self._recv_exactly(payload_len)

    def _send_frame(self, frame: bytes) -> None:
        try:
            self._sock.sendall(frame)
        except OSError as error:
            raise ConnectionLost(
                f"send failed: {error}", pending=self._pending_ids()
            ) from error

    # -- retry machinery -----------------------------------------------

    def _check_breaker(self) -> None:
        if self._retry is None:
            return
        remaining = self._breaker_open_until - time.monotonic()
        if remaining > 0:
            if self._breaker_fastfails_total is not None:
                self._breaker_fastfails_total.inc()
            raise ConnectionLost(
                f"circuit breaker open for another {remaining:.2f}s "
                "(server was unreachable)",
                pending=self._pending_ids(),
            )

    def _redeliver(self, error: Exception) -> None:
        """Re-establish delivery after ``error``, or raise it typed.

        With no :class:`RetryPolicy` the original typed error
        propagates.  Otherwise: jittered exponential backoff and
        reconnect, up to ``max_retries`` attempts; on success the
        pending frames have been resent (inside :meth:`_connect`) and
        the caller simply continues reading responses.  Exhaustion
        raises :class:`RetriesExhausted` (original failure as
        ``__cause__``) and feeds the circuit breaker.
        """
        self._teardown_socket()
        policy = self._retry
        if policy is None:
            raise error
        last = error
        for attempt in range(1, policy.max_retries + 1):
            time.sleep(policy.backoff(attempt, self._rng))
            if self._retries_total is not None:
                self._retries_total.inc()
            try:
                self._connect()
            except (OSError, ConnectionLost, DeadlineExceeded, ProtocolError) as err:
                last = err
                continue
            self._breaker_failures = 0
            return
        self._breaker_failures += 1
        if self._breaker_failures >= policy.breaker_failures:
            self._breaker_open_until = (
                time.monotonic() + policy.breaker_reset
            )
        raise RetriesExhausted(
            f"delivery failed after {policy.max_retries} reconnect attempts: "
            f"{last}",
            pending=self._pending_ids(),
        ) from last

    # -- API -----------------------------------------------------------

    def submit(
        self,
        identifiers: "np.ndarray",
        timestamps: Optional["np.ndarray"] = None,
    ) -> int:
        """Ship one batch without waiting; returns its request id."""
        self._require_socket()
        request_id = self._next_id
        self._next_id += 1
        trace = None
        if self._spans is not None:
            if self._submits % self._trace_every == 0:
                trace = (new_trace_id(), new_span_id())
                self._trace_pending[request_id] = (
                    trace[0], trace[1], time.time(), time.perf_counter(),
                )
            self._submits += 1
        frame = encode_batch(request_id, identifiers, timestamps, trace=trace)
        self._pending.append((request_id, frame))
        try:
            self._send_frame(frame)
        except ConnectionLost as error:
            self._redeliver(error)  # resends the whole pending window
        return request_id

    @property
    def pending(self) -> int:
        """Batches submitted but not yet collected."""
        return len(self._pending)

    @property
    def pending_ids(self) -> Tuple[int, ...]:
        """Request ids submitted but not yet collected, oldest first."""
        return self._pending_ids()

    def collect(self, request_id: Optional[int] = None) -> "np.ndarray":
        """Read the next response (which must match ``request_id`` if given).

        Returns the verdict array for the oldest pending submit; raises
        :class:`OverloadedError` if the server refused that batch under
        admission control and :class:`ProtocolError` if it reported the
        frame malformed or refused (either way the batch did **not**
        advance detector state).  Connection failures are retried per
        the :class:`RetryPolicy`, or raised typed without one.
        """
        if not self._pending:
            raise ConfigurationError("collect() with no pending submit")
        expected = self._pending[0][0]
        if request_id is not None and request_id != expected:
            raise ConfigurationError(
                f"collect out of order: next pending is {expected}, "
                f"asked for {request_id}"
            )
        self._require_socket()
        while True:
            try:
                frame_type, echoed, payload = self._read_frame()
            except (ConnectionLost, DeadlineExceeded) as error:
                self._redeliver(error)
                continue
            if frame_type == FRAME_RETRY and echoed in self._pending_ids():
                # The server detected payload corruption in transit; the
                # batch was not processed.  Resend the window — the same
                # bytes are expected to survive a fresh connection.
                self._redeliver(ConnectionLost(
                    f"request {echoed} damaged in transit: "
                    + payload.decode("utf-8", "replace"),
                    pending=self._pending_ids(),
                ))
                continue
            if echoed == expected:
                break
            if echoed not in self._pending_ids():
                # A response for a batch already collected: the network
                # duplicated a frame and the server's dedup cache dutifully
                # replayed its answer.  Harmless — discard and keep reading.
                continue
            # A *later* pending id answered first: the frame carrying
            # ``expected`` was lost upstream of the server, so its response
            # will never arrive on this connection.  Reconnect and resend
            # the window; the dedup cache replays what was already applied.
            self._redeliver(ConnectionLost(
                f"response id {echoed} arrived before pending request "
                f"{expected}; frames were lost in transit",
                pending=self._pending_ids(),
            ))
        self._pending.popleft()
        traced = self._trace_pending.pop(expected, None)
        if traced is not None and frame_type == FRAME_VERDICTS:
            trace_id, span_id, wall, perf = traced
            self._spans.write(
                "client.request",
                trace_id,
                span_id,
                start=wall,
                duration=time.perf_counter() - perf,
                request_id=expected,
            )
        if frame_type == FRAME_VERDICTS:
            return decode_verdicts_payload(payload)
        if frame_type == FRAME_OVERLOADED:
            raise OverloadedError(payload.decode("utf-8", "replace"))
        if frame_type == FRAME_ERROR:
            raise ProtocolError(payload.decode("utf-8", "replace"))
        raise ProtocolError(f"unexpected response frame 0x{frame_type:02X}")

    def send(
        self,
        identifiers: "np.ndarray",
        timestamps: Optional["np.ndarray"] = None,
    ) -> "np.ndarray":
        """Submit one batch and wait for its verdicts."""
        return self.collect(self.submit(identifiers, timestamps))

    def classify(
        self, clicks, scheme: IdentifierScheme = DEFAULT_SCHEME
    ) -> "np.ndarray":
        """Project clicks client-side and classify them remotely.

        Equivalent (bit-identically) to running the offline pipeline
        with the same detector and scheme.
        """
        clicks = list(clicks)
        if not clicks:
            return np.empty(0, dtype=bool)
        identifiers = scheme.identify_batch(clicks)
        timestamps = np.fromiter(
            (click.timestamp for click in clicks),
            dtype=np.float64,
            count=len(clicks),
        )
        return self.send(identifiers, timestamps)

    def ping(self) -> bool:
        """Round-trip a health probe (requires no pending submits)."""
        if self._pending:
            raise ConfigurationError("ping() while submits are pending")
        self._require_socket()
        request_id = self._next_id
        self._next_id += 1
        while True:
            try:
                self._send_frame(encode_frame(FRAME_PING, request_id))
                frame_type, echoed, _payload = self._read_frame()
                return frame_type == FRAME_PONG and echoed == request_id
            except (ConnectionLost, DeadlineExceeded) as error:
                self._redeliver(error)
                # Redelivery resends nothing for a ping (it is not a
                # batch); issue a fresh probe on the new connection.
                request_id = self._next_id
                self._next_id += 1

    def close(self) -> None:
        """Release the socket; safe on a half-closed or dead connection."""
        if self._closed:
            return
        self._closed = True
        if self._spans is not None:
            self._spans.close()
        sock, self._sock = self._sock, None
        if sock is None:
            return
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # peer already closed its half (or never connected)
        try:
            sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------

def _synthetic_batches(clicks: int, batch: int, seed: int, duplicate_rate: float):
    """Pre-built (identifiers, timestamps) batches with planted repeats."""
    rng = np.random.default_rng(seed)
    universe = max(16, int(clicks * (1.0 - duplicate_rate)))
    identifiers = rng.integers(0, universe, size=clicks, dtype=np.uint64)
    timestamps = np.cumsum(rng.exponential(0.001, size=clicks))
    return [
        (identifiers[start : start + batch], timestamps[start : start + batch])
        for start in range(0, clicks, batch)
    ]


def _file_batches(path: str, batch: int, scheme: IdentifierScheme):
    from ..streams.io import read_batches

    out = []
    for chunk in read_batches(path, batch):
        identifiers = scheme.identify_batch(chunk)
        timestamps = np.fromiter(
            (click.timestamp for click in chunk),
            dtype=np.float64,
            count=len(chunk),
        )
        out.append((identifiers, timestamps))
    return out


def run_load(
    host: str,
    port: int,
    batches,
    window: int = 32,
    max_consecutive_overloads: int = 1000,
    retry: Optional[RetryPolicy] = None,
    client_id: Optional[int] = None,
    timeout: Optional[float] = 30.0,
    registry=None,
    on_verdicts=None,
    trace_dir: Optional[str] = None,
    trace_sample: float = 0.0,
    targets: Optional[Sequence[Tuple[str, int]]] = None,
    affinity: str = "round-robin",
) -> dict:
    """Drive a bounded pipeline of batches; returns a stats dict.

    ``window`` bounds outstanding submits (the client-side mirror of the
    server's admission control).  The three refusal shapes are kept
    distinct:

    * ``OVERLOADED`` — transient pushback: the batch goes back at the
      *front* of the work queue with exponential backoff, so every
      click is eventually classified exactly once and a refused batch
      replays before any untouched work — its displacement from stream
      position is bounded by the ``window - 1`` batches already in
      flight when it was refused.
    * hard ``ERROR`` frames — the server refused the batch itself
      (malformed, stale timestamps): retrying the same bytes fails the
      same way, so the batch is **counted and dropped**, never silently
      retried forever; the count and the lost clicks are in the stats.
    * connection failures — retried per ``retry``
      (:class:`RetryPolicy`), riding the exactly-once redelivery of
      :class:`ServeClient`; with ``retry=None`` they propagate.

    Count-based detectors are indifferent to requeue displacement;
    time-based detectors see it as bounded clock skew, which the server
    repairs by clamping up to its ``skew_tolerance`` (docs/serving.md
    §3).  Keep ``window * batch`` click-duration below the server's
    tolerance — or run ``window=1`` for strictly ordered replay — when
    driving a time-based detector.

    ``on_verdicts(index, verdicts)`` is invoked for every classified
    batch (the chaos soak's journal hook).

    ``targets`` spreads the load over several servers — the cluster
    router plus its nodes, or several routers — each with its own
    connection and pipeline share.  ``affinity`` picks the batch→target
    mapping: ``"round-robin"`` deals batches out evenly,
    ``"hash"`` pins each batch to the target its first identifier
    hashes to (stable across reruns, so a target always replays the
    same sub-stream).  ``host``/``port`` are ignored when ``targets``
    is given.

    The returned stats include a ``latency`` dict with client-side
    round-trip percentiles (seconds, submit → verdict) over every
    successfully classified batch; ``None`` when nothing completed
    (zero batches, or every batch refused) — consumers must guard
    before indexing into it.
    """
    if targets is None:
        targets = [(host, port)]
    targets = list(targets)
    if not targets:
        raise ConfigurationError("need at least one target")
    if affinity not in ("round-robin", "hash"):
        raise ConfigurationError(
            f"affinity must be 'round-robin' or 'hash', got {affinity!r}"
        )
    if affinity == "hash" and len(targets) > 1:
        from ..hashing.family import _splitmix64

        def _target_of(index: int) -> int:
            identifiers = batches[index][0]
            if identifiers.shape[0] == 0:
                return index % len(targets)
            return _splitmix64(int(identifiers[0])) % len(targets)

    else:
        def _target_of(index: int) -> int:
            return index % len(targets)

    clients = [
        ServeClient(
            target_host, target_port, timeout=timeout, retry=retry,
            client_id=client_id, registry=registry, trace_dir=trace_dir,
            trace_sample=trace_sample,
        )
        for target_host, target_port in targets
    ]
    total = 0
    duplicates = 0
    overloads = 0
    errors = 0
    error_clicks = 0
    consecutive = 0
    per_target = [0] * len(targets)
    work: Deque[int] = deque(range(len(batches)))
    #: (target, request_id, batch index) — global FIFO preserves each
    #: target's per-connection collect order.
    inflight: Deque[Tuple[int, int, int]] = deque()
    submitted_at: Dict[Tuple[int, int], float] = {}
    rtts: list = []
    started = time.perf_counter()
    try:
        while work or inflight:
            while work and len(inflight) < window:
                index = work.popleft()
                target = _target_of(index)
                identifiers, timestamps = batches[index]
                request_id = clients[target].submit(identifiers, timestamps)
                submitted_at[(target, request_id)] = time.perf_counter()
                inflight.append((target, request_id, index))
            target, request_id, index = inflight.popleft()
            try:
                verdicts = clients[target].collect(request_id)
            except OverloadedError:
                submitted_at.pop((target, request_id), None)
                overloads += 1
                consecutive += 1
                if consecutive > max_consecutive_overloads:
                    raise
                work.appendleft(index)
                time.sleep(min(0.001 * (2 ** min(consecutive, 9)), 0.5))
                continue
            except ProtocolError:
                # A hard refusal: the same bytes would fail again.
                submitted_at.pop((target, request_id), None)
                errors += 1
                error_clicks += int(batches[index][0].shape[0])
                consecutive = 0
                continue
            sent = submitted_at.pop((target, request_id), None)
            if sent is not None:
                rtts.append(time.perf_counter() - sent)
            consecutive = 0
            total += int(verdicts.shape[0])
            duplicates += int(np.count_nonzero(verdicts))
            per_target[target] += int(verdicts.shape[0])
            if on_verdicts is not None:
                on_verdicts(index, verdicts)
    finally:
        for client in clients:
            client.close()
    elapsed = time.perf_counter() - started
    if rtts:
        observed = np.asarray(rtts, dtype=np.float64)
        latency = {
            "batches": int(observed.shape[0]),
            "p50_s": float(np.percentile(observed, 50)),
            "p95_s": float(np.percentile(observed, 95)),
            "p99_s": float(np.percentile(observed, 99)),
            "max_s": float(observed.max()),
        }
    else:
        latency = None
    return {
        "clicks": total,
        "duplicates": duplicates,
        "overloads": overloads,
        "errors": errors,
        "error_clicks": error_clicks,
        "seconds": elapsed,
        "clicks_per_second": total / elapsed if elapsed > 0 else 0.0,
        "latency": latency,
        "targets": [
            {"host": target_host, "port": target_port, "clicks": count}
            for (target_host, target_port), count in zip(targets, per_target)
        ],
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Load generator for the repro click-ingest server"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help="single-target port (or use --target)",
    )
    parser.add_argument(
        "--target", action="append", default=None, metavar="HOST:PORT",
        help="repeatable; spread load over several servers "
        "(router + nodes, or several routers)",
    )
    parser.add_argument(
        "--affinity", choices=("round-robin", "hash"), default="round-robin",
        help="batch->target mapping with multiple --target entries",
    )
    parser.add_argument(
        "--clicks", type=int, default=1_000_000, help="synthetic clicks to send"
    )
    parser.add_argument("--batch", type=int, default=4096)
    parser.add_argument("--window", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--duplicate-rate", type=float, default=0.2,
        help="fraction of synthetic clicks drawn as repeats",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="reconnect attempts per delivery failure (0 = fail fast)",
    )
    parser.add_argument(
        "--input", default=None, help="replay a .csv/.jsonl stream file instead"
    )
    parser.add_argument(
        "--scheme",
        default=DEFAULT_SCHEME.value,
        choices=[scheme.value for scheme in IdentifierScheme],
    )
    args = parser.parse_args(argv)

    if args.target:
        try:
            targets = [
                (spec.rsplit(":", 1)[0], int(spec.rsplit(":", 1)[1]))
                for spec in args.target
            ]
        except (IndexError, ValueError):
            parser.error(f"--target must be HOST:PORT, got {args.target}")
    elif args.port is not None:
        targets = [(args.host, args.port)]
    else:
        parser.error("one of --port or --target is required")

    if args.input is not None:
        batches = _file_batches(
            args.input, args.batch, IdentifierScheme(args.scheme)
        )
    else:
        batches = _synthetic_batches(
            args.clicks, args.batch, args.seed, args.duplicate_rate
        )
    retry = (
        RetryPolicy(max_retries=args.retries, seed=args.seed)
        if args.retries > 0
        else None
    )
    stats = run_load(
        targets[0][0], targets[0][1], batches, window=args.window,
        retry=retry, targets=targets, affinity=args.affinity,
    )
    print(
        f"{stats['clicks']} clicks in {stats['seconds']:.2f}s "
        f"({stats['clicks_per_second']:,.0f} clicks/s), "
        f"{stats['duplicates']} duplicates, {stats['overloads']} overloads, "
        f"{stats['errors']} errors ({stats['error_clicks']} clicks refused)"
    )
    latency = stats["latency"]
    if latency is not None:
        print(
            "batch RTT "
            f"p50={latency['p50_s'] * 1000:.2f}ms "
            f"p95={latency['p95_s'] * 1000:.2f}ms "
            f"p99={latency['p99_s'] * 1000:.2f}ms "
            f"max={latency['max_s'] * 1000:.2f}ms "
            f"over {latency['batches']} batches"
        )
    if len(stats["targets"]) > 1:
        for entry in stats["targets"]:
            print(
                f"  {entry['host']}:{entry['port']}: "
                f"{entry['clicks']} clicks"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke job
    raise SystemExit(main())
