"""Synchronous client for the click-ingest server, plus a load generator.

:class:`ServeClient` speaks the binary protocol over a plain blocking
socket.  The API is deliberately two-phase so callers can *pipeline*:

>>> client = ServeClient("127.0.0.1", port)
>>> first = client.submit(identifiers_a, timestamps_a)
>>> second = client.submit(identifiers_b, timestamps_b)   # in flight together
>>> verdicts_a = client.collect(first)
>>> verdicts_b = client.collect(second)

``send`` is submit+collect for the simple case, and ``classify``
projects full :class:`~repro.streams.click.Click` objects through an
identifier scheme first (the vectorized
:meth:`~repro.streams.click.IdentifierScheme.identify_batch`, so the
projection adds no per-click Python work).

Responses arrive in request order (a server guarantee), so ``collect``
just reads the next frame; an ``OVERLOADED`` response surfaces as
:class:`~repro.errors.OverloadedError` (back off and resubmit — the
server did *not* process the batch) and an ``ERROR`` response as
:class:`~repro.errors.ProtocolError`.

Run the module for a load generator::

    python -m repro.serve.client --port 9000 --clicks 1000000

It drives a bounded pipeline of synthetic batches (or a stream file via
``--input``), retries overloads with exponential backoff, and reports
sustained clicks/s.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, OverloadedError, ProtocolError
from ..streams.click import DEFAULT_SCHEME, IdentifierScheme
from .protocol import (
    FRAME_ERROR,
    FRAME_OVERLOADED,
    FRAME_PING,
    FRAME_PONG,
    FRAME_VERDICTS,
    HEADER,
    MAGIC,
    decode_header,
    decode_verdicts_payload,
    encode_batch,
    encode_frame,
)

__all__ = ["ServeClient"]


class ServeClient:
    """Blocking binary-protocol client; one TCP connection."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.sendall(MAGIC)
        self._next_id = 1
        #: Request ids submitted but not yet collected, FIFO.
        self._pending: Deque[int] = deque()
        self._closed = False

    # -- wire helpers --------------------------------------------------

    def _recv_exactly(self, count: int) -> bytes:
        chunks = []
        while count:
            chunk = self._sock.recv(count)
            if not chunk:
                raise ProtocolError("server closed the connection mid-frame")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> Tuple[int, int, bytes]:
        frame_type, request_id, payload_len = decode_header(
            self._recv_exactly(HEADER.size), expect_response=True
        )
        return frame_type, request_id, self._recv_exactly(payload_len)

    # -- API -----------------------------------------------------------

    def submit(
        self,
        identifiers: "np.ndarray",
        timestamps: Optional["np.ndarray"] = None,
    ) -> int:
        """Ship one batch without waiting; returns its request id."""
        if self._closed:
            raise ConfigurationError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(encode_batch(request_id, identifiers, timestamps))
        self._pending.append(request_id)
        return request_id

    @property
    def pending(self) -> int:
        """Batches submitted but not yet collected."""
        return len(self._pending)

    def collect(self, request_id: Optional[int] = None) -> "np.ndarray":
        """Read the next response (which must match ``request_id`` if given).

        Returns the verdict array for the oldest pending submit; raises
        :class:`OverloadedError` if the server refused that batch and
        :class:`ProtocolError` if it reported the frame malformed.
        """
        if not self._pending:
            raise ConfigurationError("collect() with no pending submit")
        expected = self._pending.popleft()
        if request_id is not None and request_id != expected:
            raise ConfigurationError(
                f"collect out of order: next pending is {expected}, "
                f"asked for {request_id}"
            )
        frame_type, echoed, payload = self._read_frame()
        if echoed != expected:
            raise ProtocolError(
                f"response id {echoed} does not match pending request {expected}"
            )
        if frame_type == FRAME_VERDICTS:
            return decode_verdicts_payload(payload)
        if frame_type == FRAME_OVERLOADED:
            raise OverloadedError(payload.decode("utf-8", "replace"))
        if frame_type == FRAME_ERROR:
            raise ProtocolError(payload.decode("utf-8", "replace"))
        raise ProtocolError(f"unexpected response frame 0x{frame_type:02X}")

    def send(
        self,
        identifiers: "np.ndarray",
        timestamps: Optional["np.ndarray"] = None,
    ) -> "np.ndarray":
        """Submit one batch and wait for its verdicts."""
        return self.collect(self.submit(identifiers, timestamps))

    def classify(
        self, clicks, scheme: IdentifierScheme = DEFAULT_SCHEME
    ) -> "np.ndarray":
        """Project clicks client-side and classify them remotely.

        Equivalent (bit-identically) to running the offline pipeline
        with the same detector and scheme.
        """
        clicks = list(clicks)
        if not clicks:
            return np.empty(0, dtype=bool)
        identifiers = scheme.identify_batch(clicks)
        timestamps = np.fromiter(
            (click.timestamp for click in clicks),
            dtype=np.float64,
            count=len(clicks),
        )
        return self.send(identifiers, timestamps)

    def ping(self) -> bool:
        """Round-trip a health probe (requires no pending submits)."""
        if self._pending:
            raise ConfigurationError("ping() while submits are pending")
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(encode_frame(FRAME_PING, request_id))
        frame_type, echoed, _payload = self._read_frame()
        return frame_type == FRAME_PONG and echoed == request_id

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------

def _synthetic_batches(clicks: int, batch: int, seed: int, duplicate_rate: float):
    """Pre-built (identifiers, timestamps) batches with planted repeats."""
    rng = np.random.default_rng(seed)
    universe = max(16, int(clicks * (1.0 - duplicate_rate)))
    identifiers = rng.integers(0, universe, size=clicks, dtype=np.uint64)
    timestamps = np.cumsum(rng.exponential(0.001, size=clicks))
    return [
        (identifiers[start : start + batch], timestamps[start : start + batch])
        for start in range(0, clicks, batch)
    ]


def _file_batches(path: str, batch: int, scheme: IdentifierScheme):
    from ..streams.io import read_batches

    out = []
    for chunk in read_batches(path, batch):
        identifiers = scheme.identify_batch(chunk)
        timestamps = np.fromiter(
            (click.timestamp for click in chunk),
            dtype=np.float64,
            count=len(chunk),
        )
        out.append((identifiers, timestamps))
    return out


def run_load(
    host: str,
    port: int,
    batches,
    window: int = 32,
    max_consecutive_overloads: int = 1000,
) -> dict:
    """Drive a bounded pipeline of batches; returns a stats dict.

    ``window`` bounds outstanding submits (the client-side mirror of the
    server's admission control).  An ``OVERLOADED`` verdict puts the
    batch back at the *front* of the work queue and backs off
    exponentially, so every click is eventually classified exactly once
    and a refused batch replays before any untouched work — its
    displacement from stream position is bounded by the ``window - 1``
    batches that were already in flight when it was refused.  Count-
    based detectors are indifferent to that displacement; time-based
    detectors see it as bounded clock skew, which the server repairs by
    clamping up to its ``skew_tolerance`` (docs/serving.md §3).  Keep
    ``window * batch`` click-duration below the server's tolerance — or
    run ``window=1`` for strictly ordered replay — when driving a
    time-based detector.
    """
    client = ServeClient(host, port)
    total = 0
    duplicates = 0
    overloads = 0
    consecutive = 0
    work: Deque[int] = deque(range(len(batches)))
    inflight: Deque[Tuple[int, int]] = deque()  # (request_id, batch index)
    started = time.perf_counter()
    try:
        while work or inflight:
            while work and len(inflight) < window:
                index = work.popleft()
                identifiers, timestamps = batches[index]
                inflight.append((client.submit(identifiers, timestamps), index))
            request_id, index = inflight.popleft()
            try:
                verdicts = client.collect(request_id)
            except OverloadedError:
                overloads += 1
                consecutive += 1
                if consecutive > max_consecutive_overloads:
                    raise
                work.appendleft(index)
                time.sleep(min(0.001 * (2 ** min(consecutive, 9)), 0.5))
                continue
            consecutive = 0
            total += int(verdicts.shape[0])
            duplicates += int(np.count_nonzero(verdicts))
    finally:
        client.close()
    elapsed = time.perf_counter() - started
    return {
        "clicks": total,
        "duplicates": duplicates,
        "overloads": overloads,
        "seconds": elapsed,
        "clicks_per_second": total / elapsed if elapsed > 0 else 0.0,
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Load generator for the repro click-ingest server"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--clicks", type=int, default=1_000_000, help="synthetic clicks to send"
    )
    parser.add_argument("--batch", type=int, default=4096)
    parser.add_argument("--window", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--duplicate-rate", type=float, default=0.2,
        help="fraction of synthetic clicks drawn as repeats",
    )
    parser.add_argument(
        "--input", default=None, help="replay a .csv/.jsonl stream file instead"
    )
    parser.add_argument(
        "--scheme",
        default=DEFAULT_SCHEME.value,
        choices=[scheme.value for scheme in IdentifierScheme],
    )
    args = parser.parse_args(argv)

    if args.input is not None:
        batches = _file_batches(
            args.input, args.batch, IdentifierScheme(args.scheme)
        )
    else:
        batches = _synthetic_batches(
            args.clicks, args.batch, args.seed, args.duplicate_rate
        )
    stats = run_load(args.host, args.port, batches, window=args.window)
    print(
        f"{stats['clicks']} clicks in {stats['seconds']:.2f}s "
        f"({stats['clicks_per_second']:,.0f} clicks/s), "
        f"{stats['duplicates']} duplicates, {stats['overloads']} overloads"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke job
    raise SystemExit(main())
