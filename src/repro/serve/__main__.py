"""``python -m repro.serve`` — the load generator (see .client)."""

from .client import main

if __name__ == "__main__":
    raise SystemExit(main())
