"""Network click-ingest: serve any duplicate detector over TCP.

The online deployment shape of the reproduction (see docs/serving.md):
an asyncio server (:class:`ClickIngestServer`) accepts length-prefixed
binary click batches — or line-delimited JSON for debugging — coalesces
them under time/size bounds (:class:`Coalescer`), classifies them
through :meth:`~repro.detection.pipeline.DetectionPipeline
.run_identified_batch`, and streams verdicts back in request order.
Admission control keeps inflight bytes bounded (explicit ``OVERLOADED``
instead of unbounded buffering), malformed frames are dead-lettered
instead of crashing, and ``SIGTERM`` drains gracefully with a detector
checkpoint — zero accepted-click loss.

The server is generic over every detector variant via the unified
protocol of :mod:`repro.detection.api`.  :class:`ServeClient` is the
synchronous client library; ``python -m repro.serve.client`` is a load
generator; ``repro serve`` is the CLI entry point.
"""

from .client import RetryPolicy, ServeClient, run_load
from .coalescer import Coalescer
from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    MAGIC,
    ProtocolError,
    RECORD_DTYPE,
)
from .server import ClickIngestServer, ServeConfig, ServerThread

__all__ = [
    "ClickIngestServer",
    "ServeConfig",
    "ServerThread",
    "ServeClient",
    "RetryPolicy",
    "run_load",
    "Coalescer",
    "ProtocolError",
    "MAGIC",
    "RECORD_DTYPE",
    "DEFAULT_MAX_FRAME_BYTES",
]
