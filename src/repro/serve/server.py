"""The asyncio click-ingest server.

Architecture (one process, one event loop)::

    conn reader ──┐                                  ┌── conn sender
    conn reader ──┼─▶ admission ─▶ queue ─▶ engine ──┼── conn sender
    conn reader ──┘   control              task      └── conn sender

* **Readers** parse frames (binary or JSONL, sniffed from the first
  bytes) and apply *admission control*: every batch charges its payload
  bytes against a per-connection and a global inflight budget; a batch
  that would exceed either is refused with an explicit ``OVERLOADED``
  response — never buffered unboundedly.  Malformed frames are
  dead-lettered and answered with ``ERROR``; the connection survives
  unless stream sync itself is lost.
* **The engine task** is the single consumer: it runs the
  :class:`~repro.serve.coalescer.Coalescer` (size/time-bounded
  grouping), classifies each group with one
  :meth:`~repro.detection.pipeline.DetectionPipeline.run_identified_batch`
  call, and resolves each request's response future.  One consumer
  means detector state advances in a single total order — the same
  guarantee the offline pipeline gives.  For time-based detectors the
  group is first merged into one monotone timestamp stream (stable
  sort across connections, residual skew clamped up to the watermark
  within ``skew_tolerance``; a request lagging beyond it is refused
  with ``ERROR``), so normal multi-client clock skew can never feed
  the detector a regressing stream.  A group the detector still
  refuses fails *those requests* with ``ERROR`` — the engine loop
  itself never dies with futures pending.
* **Senders** write responses strictly in each connection's request
  order: every request (verdicts, pong, overloaded, error alike)
  enqueues a future at read time, and the sender awaits and writes them
  FIFO.  Inflight bytes are released only after the response hits the
  socket.

Graceful drain (``SIGTERM`` → :meth:`ClickIngestServer.drain`): stop
accepting, cancel the readers (un-acknowledged frames are the client's
to resend), flush the coalescer through the engine, write every pending
response, checkpoint the detector, exit.  Every accepted click is
classified and answered — zero click loss.
"""

from __future__ import annotations

import asyncio
import base64
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..detection.api import is_timed
from ..detection.pipeline import DetectionPipeline
from ..errors import CheckpointError, ConfigurationError, ProtocolError
from ..core.checkpoint import load_detector, pack_frame, unpack_frame
from ..resilience.hardening import DeadLetterSink
from ..resilience.supervisor import CheckpointStore
from ..streams.click import DEFAULT_SCHEME, IdentifierScheme
from ..streams.io import click_from_record
from ..telemetry import TelemetrySession
from ..telemetry.requesttrace import (
    FlightRecorder,
    SpanShardWriter,
    StageLatencyRecorder,
    clear_current_trace,
    new_span_id,
    set_current_trace,
)
from .coalescer import Coalescer
from .protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FLAG_CHECKSUM,
    FRAME_BATCH,
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_HELLO_ACK,
    FRAME_OVERLOADED,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RETRY,
    HEADER,
    MAGIC,
    checksum16,
    split_trace_payload,
    decode_batch_payload,
    decode_hello_payload,
    decode_jsonl_line,
    encode_frame,
    encode_jsonl_line,
    encode_verdicts,
)
from .protocol import _U64

__all__ = ["ServeConfig", "ClickIngestServer", "ServerThread"]

#: Checkpoint frame kind for the server's own wrapper (the payload is a
#: regular ``save_detector`` blob).
_CHECKPOINT_KIND = "serve"

_BATCH_BUCKETS = (1.0, 64.0, 256.0, 1024.0, 4096.0, 8192.0, 16384.0, 65536.0)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one :class:`ClickIngestServer` deployment."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port; read it back from ``server.port``.
    port: int = 0
    #: Coalescer bounds: target engine-batch clicks and the max seconds
    #: the oldest pending request may wait.
    max_batch: int = 8192
    max_delay: float = 0.005
    #: ``N`` lifts the detector into the multi-process engine
    #: (:func:`repro.parallel.lift_sharded`); requires a sharded
    #: detector with ``N`` shards.  ``None`` stays in-process.
    workers: Optional[int] = None
    #: Admission-control budgets: total queued-but-unanswered payload
    #: bytes, globally and per connection.
    max_inflight_bytes: int = 32 * 1024 * 1024
    connection_inflight_bytes: int = 4 * 1024 * 1024
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: Directory for drain checkpoints (and resume-on-start).  ``None``
    #: disables checkpointing.
    checkpoint_dir: Optional[Union[str, Path]] = None
    checkpoint_keep: int = 2
    #: Identifier scheme for JSONL-mode requests (binary mode ships
    #: pre-projected identifiers, so the scheme never runs server-side).
    scheme: IdentifierScheme = DEFAULT_SCHEME
    #: Time-based detectors only: how far (seconds) a batch's timestamps
    #: may lag the server's high-water mark before the batch is refused
    #: with ``ERROR``.  Lags within the tolerance are clamped up to the
    #: watermark (the skew repair of
    #: :class:`repro.resilience.hardening.ReorderBuffer`), so clients
    #: whose clocks disagree by less than this can share one server.
    skew_tolerance: float = 1.0
    #: Exactly-once delivery: per-client response-cache entries and the
    #: number of distinct ``client_id`` windows kept (LRU).  A retried
    #: batch whose ``(client_id, batch_seq)`` is still cached replays
    #: its response instead of re-entering the detector.  Size
    #: ``dedup_entries`` above the largest client pipeline window —
    #: a response older than that many newer ones can no longer be
    #: replayed (the batch is still detected as applied, never
    #: re-applied).  ``0`` disables dedup entirely.
    dedup_entries: int = 512
    dedup_clients: int = 256
    #: Engine watchdog: how often (seconds) to check the engine task,
    #: and how long a single coalesced group may be in flight before
    #: the engine is declared wedged, cancelled, and restarted (the
    #: group is requeued — it has not touched detector state).
    #: ``watchdog_interval=0`` disables the watchdog, restoring the
    #: fail-static behaviour (a dead engine errors new requests).
    watchdog_interval: float = 0.5
    watchdog_stall_timeout: float = 30.0
    #: Sampled distributed tracing: when set, the server (and parallel
    #: workers, when ``workers`` lifts the detector) append span shards
    #: here for BATCH frames carrying ``FLAG_TRACE``; merge them with
    #: :func:`repro.telemetry.merge_shards` or ``repro trace``.  ``None``
    #: keeps tracing off — untraced frames never pay for it either way.
    trace_dir: Optional[Union[str, Path]] = None
    #: Flight recorder: where crash dumps land (``None`` falls back to
    #: ``checkpoint_dir``; both ``None`` disables dumping — the ring
    #: still records in memory) and how many events the ring retains.
    flight_dir: Optional[Union[str, Path]] = None
    flight_events: int = 4096
    #: Self-tuning resize: sample the detector's live estimated-FP
    #: gauge after every ``adaptive_interval`` coalesced groups and let
    #: an :class:`~repro.adaptive.AdaptiveController` resize it in the
    #: idle gap between groups (the engine task is the only detector
    #: user, so no click is in flight during the migrate).  Requires
    #: the inline engine (``workers=None``) and a detector with a
    #: ``migrate`` method (an :class:`~repro.adaptive.AdaptiveDetector`
    #: wrapper).  ``0`` disables.  ``adaptive`` optionally carries the
    #: :class:`~repro.adaptive.ControllerConfig` knobs.
    adaptive_interval: int = 0
    adaptive: Optional[object] = None

    def __post_init__(self) -> None:
        if self.max_inflight_bytes < 1:
            raise ConfigurationError(
                f"max_inflight_bytes must be >= 1, got {self.max_inflight_bytes}"
            )
        if self.connection_inflight_bytes < 1:
            raise ConfigurationError(
                "connection_inflight_bytes must be >= 1, got "
                f"{self.connection_inflight_bytes}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.skew_tolerance < 0:
            raise ConfigurationError(
                f"skew_tolerance must be >= 0, got {self.skew_tolerance}"
            )
        if self.dedup_entries < 0:
            raise ConfigurationError(
                f"dedup_entries must be >= 0, got {self.dedup_entries}"
            )
        if self.dedup_clients < 1:
            raise ConfigurationError(
                f"dedup_clients must be >= 1, got {self.dedup_clients}"
            )
        if self.watchdog_interval < 0:
            raise ConfigurationError(
                f"watchdog_interval must be >= 0, got {self.watchdog_interval}"
            )
        if self.watchdog_stall_timeout <= 0:
            raise ConfigurationError(
                "watchdog_stall_timeout must be > 0, got "
                f"{self.watchdog_stall_timeout}"
            )
        if self.adaptive_interval < 0:
            raise ConfigurationError(
                f"adaptive_interval must be >= 0, got {self.adaptive_interval}"
            )
        if self.adaptive_interval > 0 and self.workers is not None:
            raise ConfigurationError(
                "the adaptive controller resizes between coalesced groups "
                "of the inline engine; it does not compose with workers"
            )


class _ClientWindow:
    """One ``client_id``'s slice of the dedup cache."""

    __slots__ = ("entries", "pending", "floor", "max_applied")

    def __init__(self) -> None:
        #: seq → cached response bytes, oldest-applied first.
        self.entries: "OrderedDict[int, bytes]" = OrderedDict()
        #: seq → unresolved response future (batch admitted, not yet
        #: classified); duplicates arriving meanwhile mirror the future.
        self.pending: Dict[int, "asyncio.Future"] = {}
        #: Highest applied seq evicted from ``entries``: anything at or
        #: below it that is not cached is known-applied (never re-apply)
        #: even though its response can no longer be replayed.
        self.floor: int = 0
        self.max_applied: int = 0


class _DedupCache:
    """Bounded per-client response cache: the exactly-once memory.

    The idempotency key is ``(client_id, batch_seq)``.  Life cycle of
    one key: :meth:`begin` when the batch is admitted (pending),
    :meth:`commit` when the detector applied it (response cached,
    bounded LRU per client), or :meth:`abort` when it was answered
    without touching detector state (``ERROR``/engine failure — a
    retry must be allowed to re-attempt).  :meth:`lookup` classifies a
    new arrival against that memory.  ``state``/``load`` round-trip
    the committed window through drain checkpoints so exactly-once
    survives SIGTERM → restore.
    """

    def __init__(self, max_entries: int, max_clients: int) -> None:
        self.max_entries = max_entries
        self.max_clients = max_clients
        self._clients: "OrderedDict[int, _ClientWindow]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def _window(self, client_id: int) -> _ClientWindow:
        window = self._clients.get(client_id)
        if window is None:
            window = _ClientWindow()
            self._clients[client_id] = window
            while len(self._clients) > self.max_clients:
                self._clients.popitem(last=False)
        else:
            self._clients.move_to_end(client_id)
        return window

    def hello(self, client_id: int) -> int:
        """Register (or refresh) a client; its highest applied seq."""
        return self._window(client_id).max_applied

    def lookup(
        self, client_id: int, seq: int
    ) -> Tuple[str, Optional[object]]:
        """Classify an arriving ``(client_id, seq)``.

        Returns one of ``("new", None)`` — apply it; ``("replay",
        bytes)`` — applied, response cached; ``("pending", future)`` —
        in flight, mirror the future; ``("applied", None)`` — applied
        but the response has been evicted.
        """
        window = self._window(client_id)
        cached = window.entries.get(seq)
        if cached is not None:
            return "replay", cached
        future = window.pending.get(seq)
        if future is not None:
            return "pending", future
        if seq <= window.floor:
            return "applied", None
        return "new", None

    def begin(self, client_id: int, seq: int, future: "asyncio.Future") -> None:
        self._window(client_id).pending[seq] = future

    def commit(self, client_id: int, seq: int, response: bytes) -> None:
        window = self._window(client_id)
        window.pending.pop(seq, None)
        window.entries[seq] = response
        window.entries.move_to_end(seq)
        if seq > window.max_applied:
            window.max_applied = seq
        while len(window.entries) > self.max_entries:
            evicted, _ = window.entries.popitem(last=False)
            if evicted > window.floor:
                window.floor = evicted

    def abort(self, client_id: int, seq: int) -> None:
        window = self._clients.get(client_id)
        if window is not None:
            window.pending.pop(seq, None)

    def state(self) -> dict:
        """JSON-able committed state (pending entries are transient)."""
        return {
            "clients": [
                [
                    client_id,
                    window.floor,
                    window.max_applied,
                    [
                        [seq, base64.b64encode(response).decode("ascii")]
                        for seq, response in window.entries.items()
                    ],
                ]
                for client_id, window in self._clients.items()
            ]
        }

    def load(self, state: dict) -> None:
        for client_id, floor, max_applied, entries in state.get("clients", []):
            window = self._window(int(client_id))
            window.floor = int(floor)
            window.max_applied = int(max_applied)
            for seq, encoded in entries:
                window.entries[int(seq)] = base64.b64decode(encoded)


@dataclass
class _Request:
    """One admitted batch awaiting the engine."""

    __slots__ = (
        "connection",
        "request_id",
        "identifiers",
        "timestamps",
        "count",
        "wire_bytes",
        "jsonl",
        "future",
        "enqueued_at",
        "coalesced_at",
        "dedup_key",
        "trace",
    )

    connection: "_Connection"
    request_id: int
    identifiers: "np.ndarray"
    timestamps: "np.ndarray"
    count: int
    wire_bytes: int
    jsonl: bool
    future: "asyncio.Future"
    enqueued_at: float
    #: Monotonic instant the engine popped this request off the queue
    #: (initialised to ``enqueued_at``); splits the admission→verdict
    #: latency into engine_queue and coalesce_wait stages.
    coalesced_at: float
    #: ``(client_id, batch_seq)`` when the connection said ``HELLO``;
    #: ``None`` for legacy/JSONL requests outside the dedup window.
    #: (No default: a class-level default would clash with __slots__.)
    dedup_key: Optional[Tuple[int, int]]
    #: Sampled trace context ``(trace_id, parent_span_id)`` carried by a
    #: ``FLAG_TRACE`` batch frame; ``None`` for untraced requests.
    trace: Optional[Tuple[int, int]]


@dataclass
class _Connection:
    """Per-connection state shared by its reader and sender tasks."""

    writer: asyncio.StreamWriter
    #: FIFO of ``(future-of-bytes, release_bytes)``; ``None`` ends the
    #: sender.  Request order in == response order out.
    responses: "asyncio.Queue" = field(default_factory=asyncio.Queue)
    inflight_bytes: int = 0
    peer: str = ""
    #: Set by ``HELLO``: this connection's idempotency identity.
    client_id: Optional[int] = None


class ClickIngestServer:
    """Serve a duplicate detector over TCP (binary frames or JSONL).

    Generic over every detector variant via the unified protocol
    (:mod:`repro.detection.api`): anything :func:`wrap_timed` accepts —
    GBF/TBF, their time-based twins, jumping, sharded, parallel — plugs
    in unchanged.
    """

    def __init__(
        self,
        detector,
        config: Optional[ServeConfig] = None,
        telemetry: Optional[TelemetrySession] = None,
        dead_letters: Optional[DeadLetterSink] = None,
        fault_hooks=None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.telemetry = (
            telemetry if telemetry is not None else TelemetrySession.disabled()
        )
        self.dead_letters = dead_letters
        #: Chaos-testing hooks (see ``repro.resilience.faults
        #: .EngineFaultHooks``): ``before_group`` may stall or kill the
        #: engine task, ``on_checkpoint`` may fail a checkpoint write.
        #: ``None`` in production.
        self.fault_hooks = fault_hooks
        self._store = (
            CheckpointStore(self.config.checkpoint_dir, keep=self.config.checkpoint_keep)
            if self.config.checkpoint_dir is not None
            else None
        )
        self._base_detector = detector
        self._resumed_clicks = 0
        self._dedup = _DedupCache(
            self.config.dedup_entries, self.config.dedup_clients
        )
        #: Largest timestamp ever handed to a time-based detector.  New
        #: groups are merged/clamped against it so the engine's clock is
        #: monotone no matter how client clocks interleave; restored
        #: from the checkpoint so a resume cannot regress the detector.
        self._watermark = float("-inf")
        self._try_resume()
        self._engine_owned = False
        engine = self._base_detector
        if self.config.workers is not None:
            from ..parallel import lift_sharded

            engine = lift_sharded(
                self._base_detector,
                self.config.workers,
                trace_dir=(
                    str(self.config.trace_dir)
                    if self.config.trace_dir is not None
                    else None
                ),
            )
            self._engine_owned = engine is not self._base_detector
        self._engine_detector = engine
        self._timed = is_timed(engine)
        self.pipeline = DetectionPipeline(
            engine,
            billing=None,
            scheme=self.config.scheme,
            score_sources=False,
            telemetry=self.telemetry,
        )
        registry = self.telemetry.registry
        self._connections_total = registry.counter(
            "repro_serve_connections_total", "Connections accepted"
        )
        self._connections_active = registry.gauge(
            "repro_serve_connections_active", "Connections currently open"
        )
        self._inflight_gauge = registry.gauge(
            "repro_serve_inflight_bytes", "Admitted-but-unanswered payload bytes"
        )
        self._clicks_total = registry.counter(
            "repro_serve_clicks_total", "Clicks classified by the server"
        )
        self._overloaded_total = registry.counter(
            "repro_serve_overloaded_total", "Batches refused by admission control"
        )
        self._dead_letters_total = registry.counter(
            "repro_serve_dead_letters_total", "Malformed frames dead-lettered"
        )
        self._checkpoints_total = registry.counter(
            "repro_serve_checkpoints_total", "Drain checkpoints written"
        )
        self._batch_clicks = registry.histogram(
            "repro_serve_batch_clicks",
            "Clicks per coalesced engine batch",
            buckets=_BATCH_BUCKETS,
        )
        self._queue_wait = registry.histogram(
            "repro_serve_queue_wait_seconds",
            "Seconds a request waited between admission and classification",
        )
        self._engine_errors_total = registry.counter(
            "repro_serve_engine_errors_total",
            "Coalesced groups refused by the detector (all requests ERRORed)",
        )
        self._dedup_hits_total = registry.counter(
            "repro_serve_dedup_hits_total",
            "Retried batches answered from the dedup window (not re-applied)",
        )
        self._watchdog_restarts_total = registry.counter(
            "repro_serve_watchdog_restarts_total",
            "Engine tasks restarted by the watchdog (died or wedged)",
        )
        self._checkpoint_failures_total = registry.counter(
            "repro_serve_checkpoint_failures_total",
            "Checkpoint write attempts that failed",
        )
        self._corrupt_frames_total = registry.counter(
            "repro_serve_corrupt_frames_total",
            "Batches refused with RETRY on a payload checksum mismatch",
        )
        # Per-request latency decomposition (docs/observability.md §2):
        # labelled stage histograms plus exact streaming p50/p95/p99
        # gauges, refreshed on the session's snapshot cadence.  Appended
        # after the pipeline is built — DetectionPipeline resets the
        # session's instrument list when it takes the detector.
        self._stages = (
            StageLatencyRecorder(registry) if self.telemetry.enabled else None
        )
        if self._stages is not None:
            self.telemetry.instruments.append(self._stages)
        #: Always-on crash flight recorder: a bounded in-memory ring of
        #: recent structured events, dumped to JSONL on engine death,
        #: watchdog restart, wedged drain, and graceful drain.
        self.flight = FlightRecorder(self.config.flight_events)
        flight_dir = self.config.flight_dir or self.config.checkpoint_dir
        self._flight_dir = Path(flight_dir) if flight_dir is not None else None
        self._spans = (
            SpanShardWriter(str(self.config.trace_dir), "server")
            if self.config.trace_dir is not None
            else None
        )
        self._inflight_bytes = 0
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._coalescer = Coalescer(self.config.max_batch, self.config.max_delay)
        self._server: Optional[asyncio.base_events.Server] = None
        self._engine_task: Optional[asyncio.Task] = None
        self._engine_error: Optional[BaseException] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        #: Engine liveness for the watchdog: ``_engine_busy`` is True
        #: while a coalesced group is in flight, and the heartbeat is
        #: the monotonic instant the engine last made progress.
        self._engine_busy = False
        self._engine_heartbeat = time.monotonic()
        self._handlers: Set[asyncio.Task] = set()
        self._drained = asyncio.Event()
        self._draining = False
        self._engine_clicks = 0
        self._controller = None
        self._groups_since_sample = 0
        if self.config.adaptive_interval > 0:
            if not hasattr(self._base_detector, "migrate"):
                raise ConfigurationError(
                    "adaptive_interval needs a resizable detector; wrap it "
                    "in repro.adaptive.AdaptiveDetector"
                )
            from ..adaptive.controller import AdaptiveController

            self._controller = AdaptiveController(
                self._base_detector,
                self.config.adaptive,
                registry=registry,
            )

    # -- lifecycle -----------------------------------------------------

    @property
    def processed_clicks(self) -> int:
        """Clicks classified by this server, including resumed history."""
        return self._resumed_clicks + self._engine_clicks

    @property
    def resize_events(self) -> tuple:
        """The adaptive controller's resize journal (empty when off)."""
        if self._controller is None:
            return ()
        return tuple(self._controller.journal)

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            raise ConfigurationError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind, spawn the engine task, and begin accepting."""
        if self._server is not None:
            raise ConfigurationError("server already started")
        self._engine_task = asyncio.create_task(self._engine_loop())
        if self.config.watchdog_interval > 0:
            self._watchdog_task = asyncio.create_task(self._watchdog_loop())
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_frame_bytes,
        )

    async def wait_drained(self) -> None:
        """Block until :meth:`drain` has completed."""
        await self._drained.wait()

    async def drain(self) -> None:
        """Graceful shutdown: classify everything accepted, then stop.

        Stops accepting, cancels the readers, flushes the coalescer
        through the engine, writes every pending response, syncs a
        parallel fleet back into the base detector, and checkpoints.
        Idempotent; concurrent callers all wait for the one drain.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self.flight.record("drain", phase="begin")
        if self._watchdog_task is not None:
            # Stop the watchdog first so it cannot restart the engine
            # while drain is waiting for it to exit.
            self._watchdog_task.cancel()
            try:
                await self._watchdog_task
            except (Exception, asyncio.CancelledError):
                pass
            self._watchdog_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Cancel readers only: their handler tasks swallow the
        # cancellation and keep flushing responses.
        for task in list(self._handlers):
            task.cancel()
        await self._queue.put(None)  # drain sentinel: flush + exit
        await self._drain_engine()
        if self._engine_error is not None:
            self._abort_pending(f"engine failed: {self._engine_error}")
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)
        if self._engine_owned:
            # Write the workers' final state back into the base
            # detector so the checkpoint reflects every click served.
            self._engine_detector.close(sync=True)
        self._checkpoint()
        self.flight.record("drain", phase="end")
        self._dump_flight("drain")
        if self._spans is not None:
            self._spans.close()
        self._drained.set()

    def _dump_flight(self, reason: str) -> Optional[Path]:
        """Dump the flight-recorder ring to JSONL; never raises.

        This runs on crash paths (engine death, watchdog restart, wedged
        drain) where a secondary failure must not mask the primary one —
        a failed write is dead-lettered and swallowed.
        """
        if self._flight_dir is None:
            return None
        try:
            return self.flight.dump(self._flight_dir, reason)
        except OSError as error:  # pragma: no cover - disk failure
            self._dead_letter(reason, f"flight dump failed: {error}")
            return None

    async def _drain_engine(self) -> None:
        """Wait for the engine to consume the drain sentinel and exit.

        The engine task swallows its own failures (recording them in
        ``_engine_error``), but drain must also survive the failure the
        watchdog normally handles: an engine *wedged* mid-group after
        the watchdog has already been stopped.  With the watchdog
        enabled, a task that outlives the stall budget is cancelled —
        the in-flight group requeues untouched — and a fresh engine
        task finishes the queue; after a few such restarts (a detector
        that wedges every time) drain falls through to fail-static.
        """
        task = self._engine_task
        if task is None:
            return
        stall = (
            self.config.watchdog_stall_timeout
            if self.config.watchdog_interval > 0
            else None
        )
        for _attempt in range(5):
            try:
                if stall is None:
                    await task
                else:
                    await asyncio.wait_for(asyncio.shield(task), stall + 1.0)
                return
            except asyncio.TimeoutError:
                task.cancel()
                try:
                    await task
                except (Exception, asyncio.CancelledError):
                    pass
                self._restart_engine("engine wedged during drain")
                task = self._engine_task
                # The wedged task may have consumed the sentinel already;
                # a surplus None in the queue is harmless.
                await self._queue.put(None)
            except (Exception, asyncio.CancelledError):
                return
        task.cancel()
        try:
            await task
        except (Exception, asyncio.CancelledError):
            pass
        # Wedges every time it is restarted: give up and fail static so
        # the pending requests are ERRORed instead of hanging the drain.
        self.flight.record("wedged", phase="drain")
        self._dump_flight("wedged-drain")
        self._engine_error = RuntimeError("engine wedged through drain")

    def _try_resume(self) -> None:
        """Restore the newest readable drain checkpoint, if any."""
        if self._store is None:
            return
        for _path, blob in self._store.blobs():
            if blob is None:
                continue
            try:
                header, payload = unpack_frame(blob)
                if header.get("kind") != _CHECKPOINT_KIND:
                    raise CheckpointError(
                        f"not a serve checkpoint: {header.get('kind')!r}"
                    )
                detector = load_detector(payload)
            except CheckpointError:
                continue  # fall back to the previous generation
            self._base_detector = detector
            self._resumed_clicks = int(header.get("processed", 0))
            watermark = header.get("watermark")
            if watermark is not None:
                self._watermark = float(watermark)
            dedup = header.get("dedup")
            if dedup and self._dedup.enabled:
                self._dedup.load(dedup)
            return

    def _checkpoint(self) -> None:
        """Write the drain checkpoint; survive a failing write.

        The blob carries the detector state *and* the dedup window, so
        a restore keeps refusing to re-apply batches it classified
        before the SIGTERM.  A failed write (disk error, injected
        fault) is retried once; if both attempts fail, the previous
        generation stays the newest on disk — resume falls back to it,
        which costs replayed work but never correctness, because the
        clients' retry path and the (older) dedup window still agree.
        """
        if self._store is None:
            return
        from ..detection.api import wrap_timed

        blob = pack_frame(
            {
                "kind": _CHECKPOINT_KIND,
                "processed": self.processed_clicks,
                "watermark": (
                    self._watermark if self._watermark != float("-inf") else None
                ),
                "dedup": self._dedup.state() if self._dedup.enabled else None,
            },
            wrap_timed(self._base_detector).checkpoint_state(),
        )
        hook = getattr(self.fault_hooks, "on_checkpoint", None)
        for attempt in (1, 2):
            try:
                if hook is not None:
                    hook()
                self._store.save(blob)
            except Exception as error:
                self._checkpoint_failures_total.inc()
                self.flight.record("checkpoint", ok=False, attempt=attempt)
                self._dead_letter(
                    f"checkpoint attempt {attempt}", f"write failed: {error}"
                )
                continue
            self._checkpoints_total.inc()
            self.flight.record("checkpoint", ok=True, attempt=attempt)
            return

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        conn = _Connection(writer=writer, peer=str(peername))
        self._connections_total.inc()
        self._connections_active.inc()
        self._handlers.add(asyncio.current_task())
        sender = asyncio.create_task(self._sender_loop(conn))
        try:
            await self._reader_loop(conn, reader)
        except asyncio.CancelledError:
            pass  # drain: stop reading; pending responses still flush
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, OSError):
            pass  # torn mid-frame (e.g. a truncated delivery): drop it
        finally:
            conn.responses.put_nowait(None)
            try:
                await asyncio.shield(sender)
            except asyncio.CancelledError:
                try:
                    await sender
                except asyncio.CancelledError:
                    # Loop teardown (abrupt kill) cancelled the sender
                    # too; swallow so the socket below still closes —
                    # a leaked fd keeps peers hanging instead of
                    # seeing EOF.
                    pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._handlers.discard(asyncio.current_task())
            self._connections_active.dec()

    async def _reader_loop(
        self, conn: _Connection, reader: asyncio.StreamReader
    ) -> None:
        try:
            sniff = await reader.readexactly(len(MAGIC))
        except asyncio.IncompleteReadError:
            return
        if sniff == MAGIC:
            await self._binary_loop(conn, reader)
        else:
            await self._jsonl_loop(conn, reader, sniff)

    async def _binary_loop(
        self, conn: _Connection, reader: asyncio.StreamReader
    ) -> None:
        while True:
            try:
                header = await reader.readexactly(HEADER.size)
            except asyncio.IncompleteReadError:
                return
            frame_type, flags, reserved, request_id, payload_len = HEADER.unpack(header)
            if payload_len > self.config.max_frame_bytes:
                # Stream sync would require skipping an absurd payload
                # from a peer already breaking the contract: dead-letter
                # and hang up.
                self._dead_letter(
                    header, f"payload {payload_len} exceeds cap"
                )
                self._respond_now(
                    conn,
                    encode_frame(FRAME_ERROR, request_id, b"payload too large"),
                )
                return
            payload = await reader.readexactly(payload_len)
            if frame_type == FRAME_PING:
                self._respond_now(conn, encode_frame(FRAME_PONG, request_id))
                continue
            if frame_type == FRAME_HELLO:
                try:
                    client_id = decode_hello_payload(payload)
                except ProtocolError as error:
                    self._dead_letter(payload[:64], str(error))
                    self._respond_now(
                        conn,
                        encode_frame(FRAME_ERROR, request_id, str(error).encode()),
                    )
                    continue
                conn.client_id = client_id if self._dedup.enabled else None
                applied = (
                    self._dedup.hello(client_id) if self._dedup.enabled else 0
                )
                self._respond_now(
                    conn,
                    encode_frame(FRAME_HELLO_ACK, request_id, _U64.pack(applied)),
                )
                continue
            if frame_type != FRAME_BATCH:
                reason = f"unknown frame type 0x{frame_type:02X}"
                self._dead_letter(payload[:64], reason)
                self._respond_now(
                    conn, encode_frame(FRAME_ERROR, request_id, reason.encode())
                )
                continue
            if flags & FLAG_CHECKSUM and checksum16(payload) != reserved:
                # Damaged in transit: refuse as transient (RETRY) so the
                # client resends the same bytes — unlike ERROR, nothing
                # about the batch itself was wrong.
                self._corrupt_frames_total.inc()
                self.flight.record("retry", request_id=request_id)
                self._dead_letter(
                    header, f"payload checksum mismatch on request {request_id}"
                )
                self._respond_now(
                    conn,
                    encode_frame(
                        FRAME_RETRY, request_id, b"payload damaged in transit"
                    ),
                )
                continue
            if conn.client_id is not None and self._handle_duplicate(
                conn, request_id
            ):
                continue
            wire_bytes = len(payload)
            if not self._admit(conn, wire_bytes):
                self._overloaded_total.inc()
                self.flight.record(
                    "refused", request_id=request_id, bytes=wire_bytes
                )
                self._respond_now(
                    conn,
                    encode_frame(
                        FRAME_OVERLOADED, request_id, b"inflight budget full"
                    ),
                )
                continue
            stages = self._stages
            try:
                decode_t0 = time.perf_counter() if stages is not None else 0.0
                trace, records = split_trace_payload(flags, payload)
                identifiers, timestamps = decode_batch_payload(records)
                if stages is not None:
                    stages.observe("decode", time.perf_counter() - decode_t0)
            except ProtocolError as error:
                self._release(conn, wire_bytes)
                self._dead_letter(payload[:64], str(error))
                self._respond_now(
                    conn, encode_frame(FRAME_ERROR, request_id, str(error).encode())
                )
                continue
            self.flight.record(
                "frame",
                request_id=request_id,
                clicks=int(identifiers.shape[0]),
                bytes=wire_bytes,
            )
            dedup_key = (
                (conn.client_id, request_id)
                if conn.client_id is not None
                else None
            )
            await self._enqueue(
                conn,
                request_id,
                identifiers,
                timestamps,
                wire_bytes,
                jsonl=False,
                dedup_key=dedup_key,
                trace=trace,
            )

    async def _jsonl_loop(
        self, conn: _Connection, reader: asyncio.StreamReader, sniffed: bytes
    ) -> None:
        first = True
        while True:
            try:
                if first:
                    line = sniffed + await reader.readline()
                    first = False
                else:
                    line = await reader.readline()
            except ValueError as error:
                # A line above max_frame_bytes (StreamReader's limit):
                # the reader dropped the partial line, so framing is
                # lost — mirror the binary oversized-payload path:
                # dead-letter, answer, hang up.
                reason = f"JSONL line exceeds frame cap: {error}"
                self._dead_letter(conn.peer, reason)
                self._respond_now(
                    conn, encode_jsonl_line({"id": 0, "error": reason})
                )
                return
            if not line:
                return
            stripped = line.strip()
            if not stripped:
                continue
            request_id = 0
            try:
                message = decode_jsonl_line(stripped)
                request_id = int(message.get("id", 0))
                if message.get("ping"):
                    self._respond_now(
                        conn, encode_jsonl_line({"id": request_id, "pong": True})
                    )
                    continue
                clicks = [
                    click_from_record(record) for record in message["clicks"]
                ]
            except (ProtocolError, KeyError, TypeError, ValueError) as error:
                reason = f"bad JSONL request: {error}"
                self._dead_letter(stripped[:256], reason)
                self._respond_now(
                    conn,
                    encode_jsonl_line({"id": request_id, "error": reason}),
                )
                continue
            wire_bytes = len(line)
            if not self._admit(conn, wire_bytes):
                self._overloaded_total.inc()
                self._respond_now(
                    conn,
                    encode_jsonl_line(
                        {"id": request_id, "overloaded": "inflight budget full"}
                    ),
                )
                continue
            if clicks:
                identifiers = self.config.scheme.identify_batch(clicks)
                timestamps = np.fromiter(
                    (click.timestamp for click in clicks),
                    dtype=np.float64,
                    count=len(clicks),
                )
            else:
                identifiers = np.empty(0, dtype=np.uint64)
                timestamps = np.empty(0, dtype=np.float64)
            await self._enqueue(
                conn, request_id, identifiers, timestamps, wire_bytes, jsonl=True
            )

    # -- admission control ---------------------------------------------

    def _admit(self, conn: _Connection, nbytes: int) -> bool:
        if conn.inflight_bytes + nbytes > self.config.connection_inflight_bytes:
            return False
        if self._inflight_bytes + nbytes > self.config.max_inflight_bytes:
            return False
        conn.inflight_bytes += nbytes
        self._inflight_bytes += nbytes
        self._inflight_gauge.set(self._inflight_bytes)
        return True

    def _release(self, conn: _Connection, nbytes: int) -> None:
        conn.inflight_bytes -= nbytes
        self._inflight_bytes -= nbytes
        self._inflight_gauge.set(self._inflight_bytes)

    def _respond_now(self, conn: _Connection, data: bytes) -> None:
        """Enqueue an already-final response, keeping FIFO order."""
        future = asyncio.get_running_loop().create_future()
        future.set_result(data)
        conn.responses.put_nowait((future, 0))

    def _handle_duplicate(self, conn: _Connection, seq: int) -> bool:
        """Answer a retried ``(client_id, seq)`` without re-applying it.

        Returns True when the batch was recognised as a duplicate and a
        response (cached replay, mirror of the in-flight response, or
        an already-applied notice) was enqueued — the caller must then
        *not* admit the batch.  False means the key is new.
        """
        status, cached = self._dedup.lookup(conn.client_id, seq)
        if status == "new":
            return False
        self._dedup_hits_total.inc()
        if status == "replay":
            self._respond_now(conn, cached)
        elif status == "pending":
            # The first copy is still in flight: give this connection a
            # future that resolves to the same response bytes.  A
            # first-copy future that dies unresolved (engine abort)
            # resolves the mirror with ERROR so the sender never hangs.
            loop = asyncio.get_running_loop()
            mirror = loop.create_future()

            def _copy(done: "asyncio.Future") -> None:
                if mirror.done():
                    return
                if done.cancelled() or done.exception() is not None:
                    mirror.set_result(
                        encode_frame(
                            FRAME_ERROR, seq, b"original request aborted; resend"
                        )
                    )
                else:
                    mirror.set_result(done.result())

            cached.add_done_callback(_copy)
            conn.responses.put_nowait((mirror, 0))
        else:  # "applied": correctness holds, the response is gone
            self._respond_now(
                conn,
                encode_frame(
                    FRAME_ERROR,
                    seq,
                    b"batch already applied; cached response evicted "
                    b"(raise dedup_entries above the client window)",
                ),
            )
        return True

    async def _enqueue(
        self,
        conn: _Connection,
        request_id: int,
        identifiers: "np.ndarray",
        timestamps: "np.ndarray",
        wire_bytes: int,
        jsonl: bool,
        dedup_key: Optional[Tuple[int, int]] = None,
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        future = asyncio.get_running_loop().create_future()
        conn.responses.put_nowait((future, wire_bytes))
        now = time.monotonic()
        request = _Request(
            connection=conn,
            request_id=request_id,
            identifiers=identifiers,
            timestamps=timestamps,
            count=int(identifiers.shape[0]),
            wire_bytes=wire_bytes,
            jsonl=jsonl,
            future=future,
            enqueued_at=now,
            coalesced_at=now,
            dedup_key=dedup_key,
            trace=trace,
        )
        if dedup_key is not None:
            # From here the key is "pending": a duplicate arriving on
            # any connection mirrors this future instead of re-entering
            # the engine.
            self._dedup.begin(dedup_key[0], dedup_key[1], future)
        if self._engine_error is not None and (
            self._watchdog_task is None or self._draining
        ):
            # The engine loop is gone and nothing will resurrect it;
            # answer directly so the sender flushes and the budget
            # releases instead of hanging.  (With a live watchdog the
            # request just waits in the queue for the restarted engine.)
            self._fail_request(request, f"engine failed: {self._engine_error}")
            return
        await self._queue.put(request)

    async def _sender_loop(self, conn: _Connection) -> None:
        """Write responses strictly in request order; release budgets."""
        while True:
            entry = await conn.responses.get()
            if entry is None:
                return
            future, release = entry
            try:
                data = await future
            except asyncio.CancelledError:
                data = None
            if data is not None:
                # Time the write+drain only for real request responses
                # (release > 0) — control frames would skew the stage.
                stages = self._stages if release else None
                write_t0 = (
                    time.perf_counter() if stages is not None else 0.0
                )
                try:
                    conn.writer.write(data)
                    await conn.writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    # Peer went away; keep consuming so budgets release
                    # and the engine's work is not blocked.
                    pass
                else:
                    if stages is not None:
                        stages.observe(
                            "response_write", time.perf_counter() - write_t0
                        )
            if release:
                self._release(conn, release)

    # -- the engine ----------------------------------------------------

    async def _engine_loop(self) -> None:
        """Run :meth:`_engine_loop_inner`; never die with futures pending.

        A detector refusing a group is handled inside
        :meth:`_process_group` (the group's requests get ``ERROR``, the
        loop keeps serving).  Anything that still escapes — a bug, not
        bad input — must not strand the pending futures: every queued
        and coalesced request is failed with ``ERROR`` so senders flush,
        budgets release, and drain completes instead of hanging.
        """
        try:
            await self._engine_loop_inner()
        except asyncio.CancelledError:
            raise
        except BaseException as error:
            self._engine_error = error
            self.flight.record("engine_death", error=repr(error))
            self._dump_flight("engine-death")
            if self._watchdog_task is None or self._draining:
                # No watchdog to resurrect us: fail static so senders
                # flush and drain completes instead of hanging.
                self._abort_pending(f"engine failed: {error}")
            # Otherwise leave the queue and coalescer intact — the
            # watchdog restarts a fresh engine task over the same state
            # and nothing pending is lost.

    async def _watchdog_loop(self) -> None:
        """Detect and restart a dead or wedged engine task.

        Two failure shapes: the engine task *died* (an exception other
        than a detector refusal escaped — those are handled per-group),
        or it is *wedged* — busy on one group past
        ``watchdog_stall_timeout`` (a stalled detector or injected
        stall).  A wedged engine is cancelled; the cancel path requeues
        the in-flight group untouched, so the restarted engine resumes
        exactly where the old one stood.
        """
        interval = self.config.watchdog_interval
        stall_after = self.config.watchdog_stall_timeout
        while True:
            await asyncio.sleep(interval)
            if self._draining:
                return
            self.flight.record("watchdog", busy=self._engine_busy)
            task = self._engine_task
            if task is None:
                continue
            if task.done():
                self._restart_engine(f"engine task died: {self._engine_error}")
                continue
            if (
                self._engine_busy
                and time.monotonic() - self._engine_heartbeat > stall_after
            ):
                task.cancel()
                try:
                    await task
                except (Exception, asyncio.CancelledError):
                    pass
                self._restart_engine(
                    f"engine wedged > {stall_after}s on one group"
                )

    def _restart_engine(self, reason: str) -> None:
        self._watchdog_restarts_total.inc()
        self._dead_letter(reason, "engine restarted by watchdog")
        self.flight.record("restart", reason=reason)
        self._dump_flight("watchdog-restart")
        self._engine_error = None
        self._engine_busy = False
        self._engine_heartbeat = time.monotonic()
        self._engine_task = asyncio.create_task(self._engine_loop())

    async def _engine_loop_inner(self) -> None:
        queue = self._queue
        coalescer = self._coalescer
        while True:
            deadline = coalescer.deadline
            if deadline is None:
                request = await queue.get()
            else:
                timeout = max(0.0, deadline - time.monotonic())
                try:
                    request = await asyncio.wait_for(queue.get(), timeout)
                except asyncio.TimeoutError:
                    group = coalescer.flush()
                    if group:
                        self.flight.record(
                            "flush", reason="deadline", requests=len(group)
                        )
                        await self._run_group(group)
                    continue
            if request is None:
                group = coalescer.flush()
                if group:
                    self.flight.record(
                        "flush", reason="drain", requests=len(group)
                    )
                    await self._run_group(group)
                return
            request.coalesced_at = time.monotonic()
            group = coalescer.add(request, request.count)
            if group is not None:
                self.flight.record(
                    "flush", reason="size", requests=len(group)
                )
                await self._run_group(group)

    async def _run_group(self, group: List[_Request]) -> None:
        """One group through the fault hooks and the detector.

        Marks the engine busy for the watchdog and guarantees the group
        is never half-lost: if the fault hooks stall and the watchdog
        cancels us, or a hook raises (the injected engine death), the
        untouched group is requeued at the *front* of the coalescer so
        the restarted engine classifies it first — no click is lost and
        none is applied twice, because the detector has not seen it.
        """
        self._engine_busy = True
        self._engine_heartbeat = time.monotonic()
        self.flight.record(
            "group_start",
            requests=len(group),
            clicks=sum(request.count for request in group),
        )
        try:
            hooks = self.fault_hooks
            before = getattr(hooks, "before_group", None) if hooks else None
            if before is not None:
                try:
                    await before(group)
                except BaseException:
                    self._coalescer.requeue(
                        [(request, request.count) for request in group]
                    )
                    raise
            self._process_group(group)
            self.flight.record("group_end", requests=len(group))
            self._maybe_resize()
        finally:
            self._engine_busy = False
            self._engine_heartbeat = time.monotonic()

    def _maybe_resize(self) -> None:
        """Controller sample point: between groups the engine is idle,
        so a quiesce -> migrate -> resume here races nothing."""
        controller = self._controller
        if controller is None:
            return
        self._groups_since_sample += 1
        if self._groups_since_sample < self.config.adaptive_interval:
            return
        self._groups_since_sample = 0
        event = controller.observe()
        if event is not None:
            self.flight.record(
                "resize",
                direction=event.direction,
                old_bits=event.old_memory_bits,
                new_bits=event.new_memory_bits,
                estimated_fp=event.estimated_fp,
                bound=event.bound,
            )

    def _process_group(self, group: List[_Request]) -> None:
        """Classify one coalesced group and resolve its futures.

        Never raises: a request the detector cannot accept is answered
        with ``ERROR`` and dead-lettered, and the rest of the group (and
        the engine loop) carries on — the "never crash" discipline of
        docs/serving.md §3.
        """
        now = time.monotonic()
        stages = self._stages
        for request in group:
            self._queue_wait.observe(now - request.enqueued_at)
            if stages is not None:
                stages.observe(
                    "engine_queue", request.coalesced_at - request.enqueued_at
                )
                stages.observe("coalesce_wait", now - request.coalesced_at)
        if self._timed:
            group = self._reject_stale(group)
        total = sum(request.count for request in group)
        order = None
        if total:
            timestamps = None
            if len(group) == 1:
                # Single-request group: the decoder's zero-copy views
                # go to the detector as-is — no concatenate, no
                # re-materialization between socket and verdict.
                # Within-request monotonicity was already validated at
                # decode time; the watermark clamp copies only when it
                # would actually change a value (the views are
                # read-only wire bytes).
                identifiers = group[0].identifiers
                if self._timed:
                    timestamps = group[0].timestamps
                    if float(timestamps[0]) < self._watermark:
                        timestamps = np.maximum(timestamps, self._watermark)
            else:
                identifiers = np.concatenate([r.identifiers for r in group])
                if self._timed:
                    # Each request's timestamps are non-decreasing
                    # (protocol contract), but independent connections'
                    # clocks may interleave: merge the group into one
                    # monotone stream (stable, so per-request and
                    # arrival order survive) and clamp residual
                    # sub-tolerance skew up to the watermark.  The
                    # detector therefore never sees a mid-batch
                    # regression, so its state cannot half-advance.
                    timestamps = np.concatenate([r.timestamps for r in group])
                    if bool((np.diff(timestamps) < 0.0).any()):
                        order = np.argsort(timestamps, kind="stable")
                        identifiers = identifiers[order]
                        timestamps = timestamps[order]
                    np.maximum(timestamps, self._watermark, out=timestamps)
            # Sampled tracing: the first traced request lends the group
            # its trace context; the server span parents the workers'
            # shard spans via the module-global current trace (one
            # engine task — no concurrent writers).
            trace = None
            if self._spans is not None:
                for request in group:
                    if request.trace is not None:
                        trace = request.trace
                        break
            if trace is not None:
                server_span = new_span_id()
                span_wall = time.time()
                set_current_trace(trace[0], server_span)
            timed_compute = stages is not None or trace is not None
            compute_t0 = time.perf_counter() if timed_compute else 0.0
            try:
                verdicts = self.pipeline.run_identified_batch(
                    identifiers, timestamps
                )
            except Exception as error:  # keep the engine alive
                reason = f"detector rejected batch: {error}"
                self._engine_errors_total.inc()
                self._dead_letter(reason, reason)
                for request in group:
                    self._fail_request(request, reason)
                return
            finally:
                if trace is not None:
                    clear_current_trace()
            if timed_compute:
                compute_dt = time.perf_counter() - compute_t0
                if stages is not None:
                    # Requests in a coalesced group share one detector
                    # call; each observes the same compute interval.
                    for request in group:
                        stages.observe("detector_compute", compute_dt)
                if trace is not None:
                    self._spans.write(
                        "server.process_group",
                        trace[0],
                        server_span,
                        parent_id=trace[1],
                        start=span_wall,
                        duration=compute_dt,
                        clicks=total,
                        requests=len(group),
                    )
            if self._timed:
                self._watermark = float(timestamps[-1])
            if order is not None:
                inverse = np.empty_like(verdicts)
                inverse[order] = verdicts
                verdicts = inverse
        else:
            verdicts = np.empty(0, dtype=bool)
        self._batch_clicks.observe(total)
        self._clicks_total.inc(total)
        self._engine_clicks += total
        offset = 0
        for request in group:
            slice_ = verdicts[offset : offset + request.count]
            offset += request.count
            if request.jsonl:
                data = encode_jsonl_line(
                    {
                        "id": request.request_id,
                        "verdicts": [int(v) for v in slice_],
                    }
                )
            else:
                data = encode_verdicts(request.request_id, slice_)
            if request.dedup_key is not None:
                # The batch is now applied: remember the response so a
                # retry after a dropped connection replays these bytes
                # instead of re-entering the detector.
                self._dedup.commit(
                    request.dedup_key[0], request.dedup_key[1], data
                )
            if not request.future.done():
                request.future.set_result(data)

    def _reject_stale(self, group: List[_Request]) -> List[_Request]:
        """Fail requests lagging the watermark beyond the skew tolerance.

        Checked against the pre-group watermark *before* the detector
        runs, so a refused request never touches detector state; the
        client gets ``ERROR`` and owns the retry with fresh timestamps.
        """
        floor = self._watermark - self.config.skew_tolerance
        if floor == float("-inf"):
            return group
        live: List[_Request] = []
        for request in group:
            if request.count and float(request.timestamps[0]) < floor:
                reason = (
                    "timestamps regress "
                    f"{self._watermark - float(request.timestamps[0]):.3f}s "
                    "behind the stream watermark (skew_tolerance="
                    f"{self.config.skew_tolerance}); resend with current "
                    "timestamps"
                )
                self._dead_letter(
                    f"request {request.request_id} from {request.connection.peer}",
                    reason,
                )
                self._fail_request(request, reason)
            else:
                live.append(request)
        return live

    def _fail_request(self, request: _Request, reason: str) -> None:
        """Answer one admitted request with ``ERROR`` (budget still
        releases when the sender writes it).

        The batch did *not* touch detector state, so its idempotency
        key is released — the client's retry must be allowed to
        re-attempt it, not be refused as a duplicate.
        """
        if request.dedup_key is not None:
            self._dedup.abort(request.dedup_key[0], request.dedup_key[1])
        if request.jsonl:
            data = encode_jsonl_line(
                {"id": request.request_id, "error": reason}
            )
        else:
            data = encode_frame(
                FRAME_ERROR, request.request_id, reason.encode()
            )
        if not request.future.done():
            request.future.set_result(data)

    def _abort_pending(self, reason: str) -> None:
        """Fail every queued and coalesced request (dead-engine path)."""
        pending: List[_Request] = list(self._coalescer.flush() or [])
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None:
                pending.append(item)
        for request in pending:
            self._fail_request(request, reason)

    def _dead_letter(self, item, reason: str) -> None:
        self._dead_letters_total.inc()
        if self.dead_letters is not None:
            self.dead_letters.record(item, reason)


class ServerThread:
    """Run a :class:`ClickIngestServer` on a background event loop.

    The synchronous harness for tests, benchmarks, and embedding: start
    it, talk to ``thread.port`` with :class:`repro.serve.client
    .ServeClient`, and :meth:`stop` performs the same graceful drain a
    ``SIGTERM`` would.
    """

    def __init__(
        self,
        detector,
        config: Optional[ServeConfig] = None,
        telemetry: Optional[TelemetrySession] = None,
        dead_letters: Optional[DeadLetterSink] = None,
        fault_hooks=None,
    ) -> None:
        self._detector = detector
        self._config = config
        self._telemetry = telemetry
        self._dead_letters = dead_letters
        self._fault_hooks = fault_hooks
        self.server: Optional[ClickIngestServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._kill: Optional[asyncio.Event] = None
        self.port: Optional[int] = None

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ConfigurationError("serve thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            # The server binds asyncio primitives at construction, so it
            # must be built on the loop that will run it.
            self.server = ClickIngestServer(
                self._detector,
                config=self._config,
                telemetry=self._telemetry,
                dead_letters=self._dead_letters,
                fault_hooks=self._fault_hooks,
            )
            await self.server.start()
            self.port = self.server.port
            self._loop = asyncio.get_running_loop()
            self._kill = asyncio.Event()
        except BaseException as error:  # surface to start()
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        drained = asyncio.create_task(self.server.wait_drained())
        killed = asyncio.create_task(self._kill.wait())
        done, pending = await asyncio.wait(
            {drained, killed}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        if killed in done and drained not in done:
            # Abrupt death: close the listening socket and return
            # without draining or checkpointing.  ``asyncio.run``
            # cancels every remaining task on exit, so in-flight work
            # simply vanishes — the closest a thread can get to
            # simulating SIGKILL for failover tests.
            if self.server._server is not None:
                self.server._server.close()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain gracefully and join the loop thread."""
        if self._loop is None or self.server is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.drain(), self._loop)
        future.result(timeout)
        if self._thread is not None:
            self._thread.join(timeout)
        self._loop = None

    def kill(self, timeout: float = 10.0) -> None:
        """Terminate abruptly: no drain, no checkpoint, no goodbyes.

        The server's durable state stays whatever the last checkpoint
        captured — exactly the crash the resume path is built for.
        """
        if self._loop is None or self._kill is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._kill.set)
        except RuntimeError:
            pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout)
        self._loop = None

    def checkpoint(self, timeout: float = 30.0) -> None:
        """Write a checkpoint now, without draining.

        Only meaningful while traffic is quiesced (e.g. inside the
        cluster router's checkpoint barrier): the write runs on the
        event loop thread and captures detector + dedup state as-is.
        """
        if self._loop is None or self.server is None:
            raise ConfigurationError("serve thread not running")

        async def _write() -> None:
            self.server._checkpoint()

        asyncio.run_coroutine_threadsafe(_write(), self._loop).result(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
