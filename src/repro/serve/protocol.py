"""The click-ingest wire protocol: length-prefixed binary frames + JSONL.

Binary mode (the production path)
---------------------------------
A connection opens with the 4-byte magic ``RPK1``; everything after is
a stream of frames in both directions::

    header  : little-endian struct <BBHQI  (16 bytes)
              type u8 | flags u8 | reserved u16 | request_id u64 |
              payload_len u32
    payload : payload_len bytes

Client → server frame types:

``BATCH`` (0x01)
    ``payload_len // 16`` click records, each ``identifier u64 le |
    timestamp f64 le``.  The identifier scheme runs *client-side*
    (:meth:`repro.streams.click.IdentifierScheme.identify_batch`) — the
    paper's model where "each click has a predefined identifier" — so
    the server's hot path goes straight from bytes to arrays with no
    per-click Python work.  Timestamps must be non-decreasing within
    and across batches of one connection when the detector is
    time-based; *across* connections the server merges and clamps
    bounded clock skew itself (``ServeConfig.skew_tolerance``), so
    clients need not share a clock.
``PING`` (0x02)
    Health probe; empty payload.
``HELLO`` (0x03)
    Opt into *exactly-once delivery*: the payload is the client's
    stable 8-byte ``client_id`` (u64 le).  From then on every
    ``BATCH``'s ``request_id`` is read as that client's monotone
    ``batch_seq``, and the pair ``(client_id, batch_seq)`` is an
    idempotency key: the server remembers recently applied sequences in
    a bounded response cache (persisted across drain/restore), so a
    batch resent after a dropped connection is *replayed from the
    cache* — or detected as already applied — and never mutates
    detector state twice.  Send it first on every (re)connection; the
    same ``client_id`` must keep the same monotone sequence across
    reconnects.

Server → client frame types (``request_id`` always echoes the request):

``VERDICTS`` (0x81)
    One byte per click, ``1`` = duplicate (do not bill), ``0`` = valid,
    in the exact order of the batch's records.
``PONG`` (0x82)
    Ping reply.
``HELLO_ACK`` (0x83)
    Reply to ``HELLO``; the payload is the highest ``batch_seq`` the
    server knows it has applied for this ``client_id`` (u64 le, ``0``
    when none) — a reconnecting client may use it to reconcile, though
    simply resending everything unacknowledged is always safe.
``OVERLOADED`` (0xE0)
    Admission control refused the batch — it was *not* processed; the
    payload is a human-readable reason.  Back off and resend.
``ERROR`` (0xE1)
    The frame was malformed and has been dead-lettered; payload is the
    reason.  Framed errors (bad type, bad payload shape) keep the
    connection alive; an unparseable *header* forces a close, since
    stream sync is lost.
``RETRY`` (0xE2)
    Transport damage: the frame arrived intact enough to parse but its
    payload failed the integrity check (below).  The batch was *not*
    processed and the same bytes, resent, are expected to succeed —
    unlike ``ERROR``, this is the network's fault, not the client's.

Payload integrity
-----------------
``BATCH`` frames carry ``CRC-32(payload) & 0xFFFF`` in the header's
``reserved`` field with ``flags`` bit ``FLAG_CHECKSUM`` set, so a byte
corrupted in transit is detected *before* it can silently change an
identifier or timestamp (TCP's 16-bit checksum misses roughly one in
65k damaged segments; at click-stream volumes that is a matter of
time).  A server seeing a mismatch answers ``RETRY`` and drops the
frame; servers predating the flag ignore both fields, so checksummed
clients interoperate either way.  The 16-byte header itself is not
covered — header damage breaks framing and surfaces as a connection
error, which the retry path already heals.

Trace context
-------------
A sampled client may set ``flags`` bit ``FLAG_TRACE`` on a ``BATCH``:
the payload then *begins* with a 16-byte trace context — ``trace_id
u64 le | parent_span_id u64 le`` — followed by the click records.  The
checksum covers the full payload including the prefix, and the record
count becomes ``(payload_len - 16) // 16``.  Servers strip the prefix
with a ``memoryview`` slice (:func:`split_trace_payload`), so the
record decode stays zero-copy; servers predating the flag would
misread a traced payload, which is why tracing is opt-in per frame and
default-off.  An untraced frame is byte-identical to what older
clients send.

JSONL mode (debugging)
----------------------
A connection whose first byte is ``{`` speaks newline-delimited JSON
instead: requests ``{"id": n, "clicks": [<click records>]}`` with the
same click fields the stream files use (:func:`repro.streams.io
.click_to_record`), responses ``{"id": n, "verdicts": [0, 1, ...]}``,
``{"id": n, "overloaded": reason}`` or ``{"id": n, "error": reason}``.
Full clicks on the wire mean the server runs the identifier scheme —
convenient for ``nc``/``telnet`` poking, an order of magnitude slower.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Optional, Tuple

import numpy as np

from ..errors import ProtocolError

__all__ = [
    "MAGIC",
    "HEADER",
    "RECORD_BYTES",
    "RECORD_DTYPE",
    "FRAME_BATCH",
    "FRAME_PING",
    "FRAME_HELLO",
    "FRAME_VERDICTS",
    "FRAME_PONG",
    "FRAME_HELLO_ACK",
    "FRAME_OVERLOADED",
    "FRAME_ERROR",
    "FRAME_RETRY",
    "FLAG_CHECKSUM",
    "FLAG_TRACE",
    "TRACE_CONTEXT",
    "DEFAULT_MAX_FRAME_BYTES",
    "checksum16",
    "split_trace_payload",
    "encode_frame",
    "decode_header",
    "encode_hello",
    "decode_hello_payload",
    "encode_batch",
    "decode_batch_payload",
    "encode_verdicts",
    "decode_verdicts_payload",
    "ProtocolError",
]

MAGIC = b"RPK1"

#: type u8 | flags u8 | reserved u16 | request_id u64 | payload_len u32
HEADER = struct.Struct("<BBHQI")

#: One click record: identifier u64 le + timestamp f64 le.
RECORD_DTYPE = np.dtype([("identifier", "<u8"), ("timestamp", "<f8")])
RECORD_BYTES = RECORD_DTYPE.itemsize  # 16

FRAME_BATCH = 0x01
FRAME_PING = 0x02
FRAME_HELLO = 0x03
FRAME_VERDICTS = 0x81
FRAME_PONG = 0x82
FRAME_HELLO_ACK = 0x83
FRAME_OVERLOADED = 0xE0
FRAME_ERROR = 0xE1
FRAME_RETRY = 0xE2

#: Header ``flags`` bit: ``reserved`` holds ``CRC-32(payload) & 0xFFFF``.
FLAG_CHECKSUM = 0x01

#: Header ``flags`` bit: the payload starts with a :data:`TRACE_CONTEXT`
#: prefix (sampled distributed tracing — see the module docstring).
FLAG_TRACE = 0x02

#: ``FLAG_TRACE`` payload prefix: trace_id u64 le | parent_span_id u64 le.
TRACE_CONTEXT = struct.Struct("<QQ")

_REQUEST_TYPES = frozenset({FRAME_BATCH, FRAME_PING, FRAME_HELLO})
_RESPONSE_TYPES = frozenset(
    {
        FRAME_VERDICTS,
        FRAME_PONG,
        FRAME_HELLO_ACK,
        FRAME_OVERLOADED,
        FRAME_ERROR,
        FRAME_RETRY,
    }
)

#: ``HELLO``/``HELLO_ACK`` payload: one u64 little-endian value.
_U64 = struct.Struct("<Q")

#: Hard per-frame ceiling; an honest client never needs more, a broken
#: one must not make the server buffer without bound.
DEFAULT_MAX_FRAME_BYTES = 4 * 1024 * 1024


def checksum16(payload: bytes) -> int:
    """The 16-bit payload digest carried in a checksummed frame header."""
    return zlib.crc32(payload) & 0xFFFF


def encode_frame(
    frame_type: int,
    request_id: int,
    payload: bytes = b"",
    flags: int = 0,
    reserved: int = 0,
) -> bytes:
    """One wire frame: header + payload."""
    return (
        HEADER.pack(frame_type, flags, reserved, request_id, len(payload))
        + payload
    )


def decode_header(
    raw: bytes,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    expect_response: bool = False,
) -> Tuple[int, int, int]:
    """Parse and validate a 16-byte frame header.

    Returns ``(type, request_id, payload_len)``.  Raises
    :class:`ProtocolError` for a short header, unknown type, or a
    payload length over ``max_frame_bytes`` — the caller decides
    whether stream sync survives (known length → yes).
    """
    if len(raw) != HEADER.size:
        raise ProtocolError(f"short frame header: {len(raw)} of {HEADER.size} bytes")
    frame_type, _flags, _reserved, request_id, payload_len = HEADER.unpack(raw)
    allowed = _RESPONSE_TYPES if expect_response else _REQUEST_TYPES
    if frame_type not in allowed:
        raise ProtocolError(f"unknown frame type 0x{frame_type:02X}")
    if payload_len > max_frame_bytes:
        raise ProtocolError(
            f"frame payload {payload_len} bytes exceeds cap {max_frame_bytes}"
        )
    return frame_type, request_id, payload_len


def encode_hello(request_id: int, client_id: int) -> bytes:
    """A ``HELLO`` frame announcing the client's idempotency identity."""
    return encode_frame(FRAME_HELLO, request_id, _U64.pack(client_id))


def decode_hello_payload(payload: bytes) -> int:
    """The u64 of a ``HELLO``/``HELLO_ACK`` payload."""
    if len(payload) != _U64.size:
        raise ProtocolError(
            f"HELLO payload must be {_U64.size} bytes, got {len(payload)}"
        )
    return _U64.unpack(payload)[0]


def encode_batch(
    request_id: int,
    identifiers: "np.ndarray",
    timestamps: Optional["np.ndarray"] = None,
    trace: Optional[Tuple[int, int]] = None,
) -> bytes:
    """A ``BATCH`` frame from parallel identifier/timestamp arrays.

    ``timestamps`` defaults to zeros (count-based detectors never read
    them, and the record layout is fixed either way).  A sampled client
    passes ``trace=(trace_id, parent_span_id)`` to prepend the 16-byte
    trace context and set ``FLAG_TRACE``; ``None`` (the default) emits
    a frame byte-identical to the untraced protocol.
    """
    identifiers = np.ascontiguousarray(identifiers, dtype=np.uint64)
    records = np.empty(identifiers.shape[0], dtype=RECORD_DTYPE)
    records["identifier"] = identifiers
    if timestamps is None:
        records["timestamp"] = 0.0
    else:
        records["timestamp"] = np.asarray(timestamps, dtype=np.float64)
    flags = FLAG_CHECKSUM
    payload = records.tobytes()
    if trace is not None:
        payload = TRACE_CONTEXT.pack(trace[0], trace[1]) + payload
        flags |= FLAG_TRACE
    return encode_frame(
        FRAME_BATCH,
        request_id,
        payload,
        flags=flags,
        reserved=checksum16(payload),
    )


def split_trace_payload(flags: int, payload: bytes):
    """Split a ``BATCH`` payload into its trace context and record bytes.

    Returns ``(trace, records)`` where ``trace`` is ``(trace_id,
    parent_span_id)`` when ``FLAG_TRACE`` is set (``None`` otherwise)
    and ``records`` is the click-record bytes ready for
    :func:`decode_batch_payload`.  The strip is a ``memoryview`` slice,
    not a copy, so the traced path keeps the zero-copy decode.
    """
    if not flags & FLAG_TRACE:
        return None, payload
    if len(payload) < TRACE_CONTEXT.size:
        raise ProtocolError(
            f"traced batch payload of {len(payload)} bytes is shorter than "
            f"the {TRACE_CONTEXT.size}-byte trace context"
        )
    trace = TRACE_CONTEXT.unpack_from(payload)
    return trace, memoryview(payload)[TRACE_CONTEXT.size :]


def decode_batch_payload(payload: bytes) -> Tuple["np.ndarray", "np.ndarray"]:
    """Split a ``BATCH`` payload into (identifiers, timestamps) arrays.

    Zero-copy: the returned arrays are read-only *views* over the wire
    bytes (``np.frombuffer`` + structured-field access), strided at the
    16-byte record pitch.  Nothing on the fast path mutates them — the
    hash family, coalescer, and detectors only read — so the payload's
    bytes are the single allocation a batch ever needs between socket
    and verdict.  See ``docs/performance.md``.
    """
    if len(payload) % RECORD_BYTES != 0:
        raise ProtocolError(
            f"batch payload of {len(payload)} bytes is not a multiple of "
            f"the {RECORD_BYTES}-byte record size"
        )
    records = np.frombuffer(payload, dtype=RECORD_DTYPE)
    identifiers = records["identifier"]
    timestamps = records["timestamp"]
    if timestamps.shape[0] > 1 and bool((np.diff(timestamps) < 0).any()):
        raise ProtocolError("batch timestamps regress; streams must be time-ordered")
    return identifiers, timestamps


def encode_verdicts(request_id: int, verdicts: "np.ndarray") -> bytes:
    """A ``VERDICTS`` frame: one byte per click, batch order."""
    payload = np.asarray(verdicts, dtype=bool).astype(np.uint8).tobytes()
    return encode_frame(FRAME_VERDICTS, request_id, payload)


def decode_verdicts_payload(payload: bytes) -> "np.ndarray":
    """Invert :func:`encode_verdicts` into a bool array."""
    return np.frombuffer(payload, dtype=np.uint8).astype(bool)


# ----------------------------------------------------------------------
# JSONL mode
# ----------------------------------------------------------------------

def encode_jsonl_line(message: dict) -> bytes:
    """One newline-delimited JSON message."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_jsonl_line(line: bytes) -> dict:
    """Parse one JSONL message; :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"bad JSON line: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"JSONL message must be an object, got {type(message).__name__}"
        )
    return message
