"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause,
while configuration problems and runtime-state problems stay
distinguishable.

Recovery taxonomy
-----------------

Three exception classes partition restart/recovery failures, and an
operator's response differs for each:

* :class:`StreamError` — the *input* is at fault: a malformed record or
  a non-monotonic timestamp.  The detector state is intact; quarantine
  the record (see ``repro.resilience.DeadLetterSink``) or widen the
  reorder buffer and keep going.  Retrying the same record will fail
  the same way.
* :class:`CheckpointError` — one *artifact* is at fault: a checkpoint
  blob is corrupt, truncated, or belongs to a different configuration.
  This is recoverable by fallback: discard that blob and load the
  previous generation (``repro.resilience.CheckpointStore`` does this
  automatically).
* :class:`RecoveryError` — the *resume itself* is impossible: every
  checkpoint generation is unreadable, or the surviving state
  contradicts the running configuration (wrong identifier scheme,
  unknown billing entities).  There is no older artifact to fall back
  to; a human must decide between a cold start (forgetting the window —
  the attacker's free pass) and restoring infrastructure.  Raised
  instead of a generic ``RuntimeError`` so supervisors can tell "retry
  with the previous checkpoint" apart from "page somebody".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A constructor or factory received inconsistent or invalid parameters.

    Examples: a Bloom filter with ``num_bits <= 0``, a jumping window whose
    size is not divisible by its sub-window count, a TBF whose cleanup
    budget ``C`` is negative.
    """


class CapacityError(ReproError, RuntimeError):
    """A bounded data structure was asked to exceed its designed capacity.

    Raised, for example, when a counting Bloom filter counter would
    overflow its configured width and saturation is disabled.
    """


class StreamError(ReproError, RuntimeError):
    """A click stream violated an ordering or format requirement.

    Examples: non-monotonic timestamps fed to a time-based window, or a
    malformed record encountered while parsing a stream file.
    """


class BudgetError(ReproError, RuntimeError):
    """An advertiser budget was exhausted or a charge was invalid."""


class ParallelError(ReproError, RuntimeError):
    """The multi-process detection engine lost a worker or a transport.

    Raised when a worker process reports an unrecoverable error, when a
    shared-memory ring times out (the deadlock guard), or when a dead
    worker cannot be respawned and no failover policy is configured.
    Unclean worker deaths are normally *handled* — respawn from the last
    checkpoint, or degrade the shard under its failover policy — so this
    surfacing means supervision itself has run out of options.
    """


class ProtocolError(ReproError, RuntimeError):
    """A malformed frame or message on the click-ingest wire protocol.

    Raised by :mod:`repro.serve.protocol` codecs; the server dead-letters
    the offending frame instead of crashing the connection loop.
    """


class OverloadedError(ReproError, RuntimeError):
    """The ingest server refused a batch under admission control.

    Client-side surfacing of an ``OVERLOADED`` response: the server's
    inflight budget was full, the batch was *not* processed, and the
    caller should back off and retry.
    """


class DeliveryError(ReproError, RuntimeError):
    """A client-side delivery failure on the click-ingest protocol.

    Base class for the retry-path errors of
    :class:`repro.serve.client.ServeClient`.  ``pending`` carries the
    request ids that were submitted but had no response when the error
    fired — with idempotent delivery enabled (the ``HELLO`` handshake)
    every one of them is safe to resend on a fresh connection: the
    server either replays the cached response or reports the batch
    already applied, never applies it twice.
    """

    def __init__(self, message: str, pending=()) -> None:
        super().__init__(message)
        #: Request ids submitted but unresolved when the error fired.
        self.pending = tuple(pending)


class ConnectionLost(DeliveryError):
    """The TCP connection to the ingest server dropped mid-exchange.

    Raised instead of leaking raw ``socket.error``/``struct.error``
    when the server dies mid-frame.  Also raised (fast, without
    touching the network) while the client's circuit breaker is open.
    """


class DeadlineExceeded(DeliveryError):
    """A request's response did not arrive within its deadline."""


class RetriesExhausted(DeliveryError):
    """The retry budget ran out without re-establishing delivery.

    The last underlying failure is available as ``__cause__``.
    """


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint is corrupt, truncated, or does not match the config.

    Recoverable by fallback: discard the offending blob and restore the
    previous good generation (see the recovery taxonomy in the module
    docstring).
    """


class RecoveryError(CheckpointError):
    """A resume is impossible: no usable checkpoint, or state that
    contradicts the running configuration.

    Unlike a plain :class:`CheckpointError` there is nothing left to
    fall back to — continuing requires a human decision (cold start vs.
    restoring the checkpoint store), so supervisors must not swallow
    this.
    """
