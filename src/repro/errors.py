"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause,
while configuration problems and runtime-state problems stay
distinguishable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A constructor or factory received inconsistent or invalid parameters.

    Examples: a Bloom filter with ``num_bits <= 0``, a jumping window whose
    size is not divisible by its sub-window count, a TBF whose cleanup
    budget ``C`` is negative.
    """


class CapacityError(ReproError, RuntimeError):
    """A bounded data structure was asked to exceed its designed capacity.

    Raised, for example, when a counting Bloom filter counter would
    overflow its configured width and saturation is disabled.
    """


class StreamError(ReproError, RuntimeError):
    """A click stream violated an ordering or format requirement.

    Examples: non-monotonic timestamps fed to a time-based window, or a
    malformed record encountered while parsing a stream file.
    """


class BudgetError(ReproError, RuntimeError):
    """An advertiser budget was exhausted or a charge was invalid."""
