"""The chaos soak: prove exactly-once delivery by reconciliation.

A soak drives a seeded synthetic click load through a
:class:`~repro.chaos.proxy.ChaosProxy` into a real
:class:`~repro.serve.server.ClickIngestServer` while three fault
families fire on schedule:

* **network** — the proxy drops, duplicates, delays, corrupts,
  truncates, and resets frames per its :class:`FaultPlan`;
* **engine** — :class:`~repro.resilience.faults.EngineFaultHooks` kill
  and stall the engine task (the watchdog must restart it) and fail a
  checkpoint write (the drain must survive it);
* **process** — mid-schedule the server is drained (the ``SIGTERM``
  path), a fresh server restores its checkpoint — detector state *and*
  dedup window — and the proxy is retargeted at it, all while the
  client keeps retrying.

Afterwards the books must balance — that is the whole point:

* **zero lost batches** — every batch produced a collected verdict
  frame (``report.lost == 0``);
* **zero double-applied batches** — the servers' cumulative
  ``processed_clicks`` equals the clicks sent, exactly: a batch that
  slipped past the dedup window twice would overshoot
  (``report.double_applied == 0``);
* **verdicts bit-identical to offline** — the verdict journal,
  reassembled in batch order, equals one clean offline pass of the
  same detector over the same stream.  This is the strongest check:
  a replayed *response* is byte-cached so it cannot drift, and a
  re-applied *batch* would poison the sketch and flip later verdicts.

The soak keeps the client pipeline at ``window=1`` (strictly ordered
replay) because bit-identity is only defined against the offline
stream order; the server-side exactly-once machinery is the same at
any window depth, and the dedup/duplicate-frame paths are still
exercised by the proxy's duplications and retries.

Everything is seeded: the stream, the fault plan, the client jitter.
A failing seed is a reproducible bug report.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..cluster import LocalCluster
from ..detection import DetectionPipeline, DetectorSpec, WindowSpec, create_detector
from ..errors import ConfigurationError
from ..resilience.faults import EngineFaultHooks
from ..serve import RetryPolicy, ServeConfig, ServerThread
from ..serve.client import _synthetic_batches, run_load
from ..telemetry import FlightRecorder, TelemetrySession
from .proxy import FaultPlan, ProxyThread

__all__ = ["SoakConfig", "SoakReport", "run_soak", "DEFAULT_PLAN"]

#: A plan that exercises every fault kind but still converges quickly.
DEFAULT_PLAN = FaultPlan(
    drop_rate=0.02,
    duplicate_rate=0.03,
    delay_rate=0.02,
    corrupt_rate=0.02,
    truncate_rate=0.01,
    reset_rate=0.01,
    delay_seconds=0.005,
)


def _default_spec(seed: int) -> DetectorSpec:
    # Count-based TBF: verdict order is exactly stream order, which is
    # what bit-identity against the offline pass requires.
    return DetectorSpec(
        algorithm="tbf",
        window=WindowSpec("sliding", 4096, 1),
        seed=seed,
        target_fp=0.001,
    )


@dataclass(frozen=True)
class SoakConfig:
    """One soak scenario; every field is part of the seeded schedule."""

    clicks: int = 50_000
    batch: int = 256
    seed: int = 7
    duplicate_rate: float = 0.2
    #: Per-response client deadline (drops surface after this long).
    timeout: float = 1.0
    plan: FaultPlan = field(default_factory=lambda: DEFAULT_PLAN)
    #: Seconds into the load at which the server is SIGTERM-drained and
    #: a fresh one restores the checkpoint; ``None`` skips the restart.
    drain_after: Optional[float] = 1.0
    #: Engine-fault schedule (group indices; ``None`` disables one).
    engine_fail_group: Optional[int] = 2
    engine_stall_group: Optional[int] = 6
    fail_first_checkpoint: bool = True
    #: Client retry budget per delivery failure.
    retries: int = 12
    detector: Optional[DetectorSpec] = None
    #: Route the soak through a :class:`~repro.cluster.LocalCluster` of
    #: this many serve nodes behind the scatter/gather router instead of
    #: one server.  The mid-schedule process fault then becomes a node
    #: failover (checkpoint barrier, SIGKILL-equivalent, restore on the
    #: same port) and the books must still balance across the fleet.
    cluster_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.clicks < 1 or self.batch < 1:
            raise ConfigurationError("clicks and batch must be >= 1")
        if self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.drain_after is not None and self.drain_after < 0:
            raise ConfigurationError(
                f"drain_after must be >= 0, got {self.drain_after}"
            )
        if self.cluster_nodes is not None and self.cluster_nodes < 1:
            raise ConfigurationError(
                f"cluster_nodes must be >= 1, got {self.cluster_nodes}"
            )


@dataclass
class SoakReport:
    """The reconciliation: what was sent vs. applied vs. answered."""

    total_clicks: int
    collected_clicks: int
    applied_clicks: int
    lost_clicks: int
    double_applied_clicks: int
    bit_identical: bool
    missing_batches: int
    restarts: int
    watchdog_restarts: int
    dedup_hits: int
    client_retries: int
    checkpoint_failures: int
    corrupt_frames: int
    proxy_faults: Dict[str, int]
    overloads: int
    errors: int
    seconds: float
    clicks_per_second: float
    #: Flight-recorder reconciliation: JSONL dumps found in the
    #: checkpoint directory after the soak (every injected engine death
    #: / watchdog restart / drain must leave one) and whether every one
    #: of them parsed back cleanly.
    flight_dumps: int = 0
    flight_parse_ok: bool = True

    @property
    def ok(self) -> bool:
        """The exactly-once verdict: nothing lost, nothing doubled,
        verdicts indistinguishable from one clean offline pass — and
        every fault left a parseable flight-recorder dump behind."""
        return (
            self.lost_clicks == 0
            and self.double_applied_clicks == 0
            and self.missing_batches == 0
            and self.errors == 0
            and self.bit_identical
            and self.flight_dumps > 0
            and self.flight_parse_ok
        )

    def summary(self) -> str:
        faults = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.proxy_faults.items())
        ) or "none"
        return (
            f"{'PASS' if self.ok else 'FAIL'}: {self.total_clicks} clicks "
            f"in {self.seconds:.2f}s ({self.clicks_per_second:,.0f}/s)\n"
            f"  lost={self.lost_clicks} double_applied="
            f"{self.double_applied_clicks} bit_identical={self.bit_identical}\n"
            f"  network faults: {faults}\n"
            f"  recoveries: retries={self.client_retries} "
            f"dedup_hits={self.dedup_hits} corrupt_refusals={self.corrupt_frames} "
            f"watchdog_restarts={self.watchdog_restarts} "
            f"server_restarts={self.restarts} "
            f"checkpoint_failures={self.checkpoint_failures}\n"
            f"  refusals: overloads={self.overloads} hard_errors={self.errors}\n"
            f"  flight recorder: dumps={self.flight_dumps} "
            f"parse_ok={self.flight_parse_ok}"
        )


def _counter_value(registry, name: str) -> int:
    for entry in registry.snapshot()["counters"]:
        if entry["name"] == name and not entry["labels"]:
            return int(entry["value"])
    return 0


def _reconcile(
    batches,
    total_clicks: int,
    stats: dict,
    applied: int,
    journal: Dict[int, np.ndarray],
    expected: np.ndarray,
    session: TelemetrySession,
    proxy_faults: Dict[str, int],
    restarts: int,
    flight_paths: List[Path],
) -> SoakReport:
    """Balance the books; shared by the single-server and cluster soaks.

    ``corrupt_frames`` sums the serve- and cluster-tier counters: a
    corrupted frame is refused wherever it is first noticed (the router
    checks the checksum before slicing, a lone server at its own front
    door), and either refusal must surface as a retried delivery.
    """
    flight_parse_ok = True
    for path in flight_paths:
        try:
            FlightRecorder.parse(path)
        except (ValueError, OSError):
            flight_parse_ok = False
    missing = [i for i in range(len(batches)) if i not in journal]
    actual = (
        np.concatenate([journal[i] for i in range(len(batches))])
        if not missing and journal
        else None
    )
    classified = total_clicks - stats["error_clicks"]
    registry = session.registry
    return SoakReport(
        total_clicks=total_clicks,
        collected_clicks=stats["clicks"],
        applied_clicks=applied,
        lost_clicks=total_clicks - stats["clicks"] - stats["error_clicks"],
        double_applied_clicks=max(0, applied - classified),
        bit_identical=(
            actual is not None and bool(np.array_equal(actual, expected))
        ),
        missing_batches=len(missing),
        restarts=restarts,
        watchdog_restarts=_counter_value(
            registry, "repro_serve_watchdog_restarts_total"
        ),
        dedup_hits=_counter_value(registry, "repro_serve_dedup_hits_total"),
        client_retries=_counter_value(registry, "repro_serve_retries_total"),
        checkpoint_failures=_counter_value(
            registry, "repro_serve_checkpoint_failures_total"
        ),
        corrupt_frames=(
            _counter_value(registry, "repro_serve_corrupt_frames_total")
            + _counter_value(registry, "repro_cluster_corrupt_frames_total")
        ),
        proxy_faults=proxy_faults,
        overloads=stats["overloads"],
        errors=stats["errors"],
        seconds=stats["seconds"],
        clicks_per_second=stats["clicks_per_second"],
        flight_dumps=len(flight_paths),
        flight_parse_ok=flight_parse_ok,
    )


def run_soak(
    config: Optional[SoakConfig] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> SoakReport:
    """Run one soak scenario; see the module docstring for what it proves.

    ``checkpoint_dir`` defaults to a temporary directory; pass one to
    inspect the drain checkpoints afterwards.
    """
    config = config if config is not None else SoakConfig()
    spec = config.detector if config.detector is not None else _default_spec(
        config.seed
    )
    if config.cluster_nodes is not None and spec.shards < 2:
        # Cluster slices partition a *sharded* detector; widen the
        # default spec so there are shards to spread across nodes.
        spec = replace(spec, shards=8)

    batches = _synthetic_batches(
        config.clicks, config.batch, config.seed, config.duplicate_rate
    )
    total_clicks = sum(int(ids.shape[0]) for ids, _ts in batches)

    # The ground truth: one clean offline pass, same detector, same order.
    offline = DetectionPipeline(
        create_detector(spec), billing=None, score_sources=False
    )
    expected = np.concatenate(
        [offline.run_identified_batch(ids, None) for ids, _ts in batches]
    )

    hooks = EngineFaultHooks(
        fail_groups=(
            () if config.engine_fail_group is None else (config.engine_fail_group,)
        ),
        stall_groups=(
            {}
            if config.engine_stall_group is None
            else {config.engine_stall_group: 30.0}
        ),
        fail_checkpoints=(0,) if config.fail_first_checkpoint else (),
    )
    session = TelemetrySession()

    if config.cluster_nodes is not None:
        return _cluster_soak(
            config, spec, batches, total_clicks, expected, hooks, session,
            checkpoint_dir,
        )

    with tempfile.TemporaryDirectory(prefix="repro-soak-") as fallback_dir:
        ckpt = Path(checkpoint_dir) if checkpoint_dir is not None else Path(
            fallback_dir
        )
        server_config = ServeConfig(
            port=0,
            max_delay=0.002,
            checkpoint_dir=ckpt,
            dedup_entries=128,
            watchdog_interval=0.05,
            watchdog_stall_timeout=0.4,
        )

        def _spawn() -> ServerThread:
            # A restarted server resumes detector + dedup state from the
            # newest drain checkpoint in ``ckpt``.
            return ServerThread(
                create_detector(spec),
                config=server_config,
                telemetry=session,
                fault_hooks=hooks,
            ).start()

        state = {"thread": _spawn(), "restarts": 0}
        proxy = ProxyThread(state["thread"].port, plan=config.plan).start()

        stop_restarter = threading.Event()

        def _restarter() -> None:
            if stop_restarter.wait(config.drain_after):
                return
            # The SIGTERM path, mid-load: drain (checkpoint included),
            # restore into a fresh process-equivalent, repoint the proxy.
            state["thread"].stop()
            replacement = _spawn()
            proxy.retarget(replacement.port)
            state["thread"] = replacement
            state["restarts"] += 1

        restarter = None
        if config.drain_after is not None:
            restarter = threading.Thread(
                target=_restarter, name="repro-soak-restarter", daemon=True
            )
            restarter.start()

        journal: Dict[int, np.ndarray] = {}

        def _record(index: int, verdicts: np.ndarray) -> None:
            journal[index] = verdicts.copy()

        try:
            stats = run_load(
                "127.0.0.1",
                proxy.port,
                batches,
                window=1,
                retry=RetryPolicy(
                    max_retries=config.retries,
                    base_backoff=0.05,
                    max_backoff=0.5,
                    breaker_reset=0.2,
                    seed=config.seed,
                ),
                client_id=(config.seed << 1) | 1,
                timeout=config.timeout,
                registry=session.registry,
                on_verdicts=_record,
            )
        finally:
            stop_restarter.set()
            if restarter is not None:
                restarter.join(timeout=30.0)
            proxy_faults = dict(proxy.proxy.faults) if proxy.proxy else {}
            proxy.stop()
            state["thread"].stop()

        applied = state["thread"].server.processed_clicks
        # Flight-recorder reconciliation: the injected engine faults and
        # every drain must each have dumped the event ring, and every
        # dump must round-trip through the parser.
        return _reconcile(
            batches,
            total_clicks,
            stats,
            applied,
            journal,
            expected,
            session,
            proxy_faults,
            state["restarts"],
            sorted(ckpt.glob("flight-*.jsonl")),
        )


def _cluster_soak(
    config: SoakConfig,
    spec: DetectorSpec,
    batches,
    total_clicks: int,
    expected: np.ndarray,
    hooks: EngineFaultHooks,
    session: TelemetrySession,
    checkpoint_dir: Optional[Union[str, Path]],
) -> SoakReport:
    """The soak, routed through the cluster tier.

    Same proxy, same fault plan, same client — but the frames land on a
    :class:`~repro.cluster.ClusterRouter` that scatters each batch
    across ``config.cluster_nodes`` serve nodes.  The mid-schedule
    process fault becomes a *failover*: a cluster-wide checkpoint
    barrier, then a SIGKILL-equivalent on the last node and a restore
    on the same port, with the router's ack-gated journals rolling the
    replacement forward.  ``applied`` is the fleet-wide sum from the
    drain manifest, so a batch double-applied on *any* node overshoots
    the reconciliation exactly as it would on one server.
    """
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as fallback_dir:
        ckpt = Path(checkpoint_dir) if checkpoint_dir is not None else Path(
            fallback_dir
        )
        node_config = ServeConfig(
            max_delay=0.002,
            dedup_entries=128,
            watchdog_interval=0.05,
            watchdog_stall_timeout=0.4,
        )
        cluster = LocalCluster(
            lambda: create_detector(spec),
            config.cluster_nodes,
            ckpt,
            node_config=node_config,
            telemetry=session,
            fault_hooks=hooks,
        ).start()
        proxy = ProxyThread(cluster.port, plan=config.plan).start()

        stop_failover = threading.Event()
        failovers = {"count": 0}

        def _failover() -> None:
            if stop_failover.wait(config.drain_after):
                return
            # Checkpoint barrier first: the journals the barrier clears
            # are exactly what would otherwise have to replay from the
            # beginning of time on the restored node.
            victim = cluster.num_nodes - 1
            cluster.checkpoint()
            cluster.kill_node(victim)
            cluster.restore_node(victim)
            failovers["count"] += 1

        restarter = None
        if config.drain_after is not None:
            restarter = threading.Thread(
                target=_failover, name="repro-soak-failover", daemon=True
            )
            restarter.start()

        journal: Dict[int, np.ndarray] = {}

        def _record(index: int, verdicts: np.ndarray) -> None:
            journal[index] = verdicts.copy()

        manifest = None
        try:
            stats = run_load(
                "127.0.0.1",
                proxy.port,
                batches,
                window=1,
                retry=RetryPolicy(
                    max_retries=config.retries,
                    base_backoff=0.05,
                    max_backoff=0.5,
                    breaker_reset=0.2,
                    seed=config.seed,
                ),
                client_id=(config.seed << 1) | 1,
                timeout=config.timeout,
                registry=session.registry,
                on_verdicts=_record,
            )
        finally:
            stop_failover.set()
            if restarter is not None:
                restarter.join(timeout=30.0)
            proxy_faults = dict(proxy.proxy.faults) if proxy.proxy else {}
            proxy.stop()
            # The drain manifest is the cluster's closing statement:
            # fleet-wide totals plus per-node processed counts.
            manifest = cluster.drain()

        applied = sum(
            int(node["processed_clicks"])
            for node in (manifest or {}).get("nodes", [])
        )
        return _reconcile(
            batches,
            total_clicks,
            stats,
            applied,
            journal,
            expected,
            session,
            proxy_faults,
            failovers["count"],
            sorted(ckpt.glob("node-*/flight-*.jsonl")),
        )
