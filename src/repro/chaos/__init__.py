"""Network fault injection and the chaos soak harness.

The serve stack (:mod:`repro.serve`) claims *exactly-once* click
delivery under failure.  This package is the adversary that makes the
claim falsifiable:

* :class:`ChaosProxy` / :class:`ProxyThread` — a frame-aware TCP proxy
  that drops, duplicates, delays, corrupts, truncates, and resets
  frames on a seeded schedule (:class:`FaultPlan`);
* :func:`run_soak` — drives a load through the proxy while engine
  faults (:class:`~repro.resilience.faults.EngineFaultHooks`) and a
  mid-schedule SIGTERM drain → restore fire, then *reconciles*: zero
  lost batches, zero double-applied batches, verdicts bit-identical to
  one clean offline pass.

``repro chaos`` is the CLI entry point; the CI ``chaos-smoke`` job runs
a seeded soak on every push.  docs/operations.md has the runbook.
"""

from .proxy import FAULT_KINDS, ChaosProxy, FaultPlan, ProxyThread
from .soak import DEFAULT_PLAN, SoakConfig, SoakReport, run_soak

__all__ = [
    "FAULT_KINDS",
    "ChaosProxy",
    "FaultPlan",
    "ProxyThread",
    "DEFAULT_PLAN",
    "SoakConfig",
    "SoakReport",
    "run_soak",
]
