"""A frame-aware TCP fault proxy for the click-ingest protocol.

The proxy sits between a :class:`~repro.serve.client.ServeClient` and a
real :class:`~repro.serve.server.ClickIngestServer` and damages the
*network* deterministically: it parses the client's binary frames and,
per frame, may drop it, duplicate it, delay it, corrupt a payload byte,
truncate it mid-frame (then reset — framing is gone), or reset the
whole connection; the server→client direction can be bandwidth
throttled.  Every decision is a pure function of ``(seed,
connection_index, frame_index)`` (the :class:`~repro.resilience.faults
.FaultInjector` keyed-RNG idiom), so a chaos soak that found a bug
replays the identical fault schedule from the same seed.

The faults are *client→server only* and frame-aligned on purpose: they
model the failures the retry-safe protocol claims to survive — lost,
repeated, damaged, and torn deliveries — while leaving each delivered
frame's boundaries parseable by the server.  Header-level damage
(which breaks framing outright) is modelled by ``truncate``/``reset``,
which kill the connection the way real torn TCP streams do.

:class:`ProxyThread` is the synchronous harness (the mirror of
:class:`~repro.serve.server.ServerThread`); :meth:`ProxyThread.retarget`
repoints new upstream connections at a different port, which is how the
soak swaps in a restored server mid-schedule without the client ever
learning the address changed.
"""

from __future__ import annotations

import asyncio
import random
import threading
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Set

from ..errors import ConfigurationError
from ..serve.protocol import HEADER, MAGIC

__all__ = ["FAULT_KINDS", "FaultPlan", "ChaosProxy", "ProxyThread"]

#: Frame fates a :class:`FaultPlan` can choose (plus implicit "pass").
FAULT_KINDS = ("drop", "duplicate", "delay", "corrupt", "truncate", "reset")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded per-frame fault probabilities.

    Rates are independent probabilities that must sum to at most 1; the
    remainder is the pass-through rate.  ``decide`` draws once per
    frame from an RNG keyed on ``(seed, connection, frame)``, so the
    schedule is a property of the plan, not of timing.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    reset_rate: float = 0.0
    #: Seconds a "delay" fault holds the frame back.
    delay_seconds: float = 0.02
    #: Server→client bandwidth cap; ``None`` = unthrottled.
    bytes_per_second: Optional[int] = None

    def __post_init__(self) -> None:
        total = 0.0
        for kind in FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{kind}_rate must be in [0, 1], got {rate}"
                )
            total += rate
        if total > 1.0:
            raise ConfigurationError(
                f"fault rates sum to {total}; must be <= 1"
            )
        if self.delay_seconds < 0:
            raise ConfigurationError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )
        if self.bytes_per_second is not None and self.bytes_per_second < 1:
            raise ConfigurationError(
                f"bytes_per_second must be >= 1, got {self.bytes_per_second}"
            )

    def _rng(self, *salt: object) -> random.Random:
        return random.Random((self.seed, *salt).__repr__())

    def decide(self, connection: int, frame: int) -> str:
        """The fate of frame ``frame`` on connection ``connection``."""
        roll = self._rng(connection, frame).random()
        for kind in FAULT_KINDS:
            roll -= getattr(self, f"{kind}_rate")
            if roll < 0.0:
                return kind
        return "pass"

    def corrupt_offset(self, connection: int, frame: int, size: int) -> int:
        """Which payload byte a "corrupt" fault flips."""
        return self._rng("corrupt", connection, frame).randrange(size)

    def truncate_at(self, connection: int, frame: int, size: int) -> int:
        """How many payload bytes a "truncate" fault lets through."""
        return self._rng("truncate", connection, frame).randrange(size + 1)


class ChaosProxy:
    """The asyncio proxy; construct and :meth:`start` inside a loop.

    ``faults`` counts applied faults by kind — a soak asserts from it
    that the schedule actually exercised something.
    """

    def __init__(
        self,
        upstream_port: int,
        plan: Optional[FaultPlan] = None,
        upstream_host: str = "127.0.0.1",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self._host = host
        self._port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._conns: Set[asyncio.Task] = set()
        self._connections = 0
        self.faults: Counter = Counter()

    @property
    def port(self) -> int:
        if self._server is None:
            raise ConfigurationError("proxy not started")
        return self._server.sockets[0].getsockname()[1]

    def retarget(self, port: int, host: Optional[str] = None) -> None:
        """Point *new* upstream connections elsewhere (server restarted)."""
        self.upstream_port = port
        if host is not None:
            self.upstream_host = host

    async def start(self) -> None:
        if self._server is not None:
            raise ConfigurationError("proxy already started")
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=self._port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*list(self._conns), return_exceptions=True)

    # -- per-connection plumbing ---------------------------------------

    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(asyncio.current_task())
        index = self._connections
        self._connections += 1
        upstream_writer = None
        try:
            try:
                upstream_reader, upstream_writer = await asyncio.open_connection(
                    self.upstream_host, self.upstream_port
                )
            except OSError:
                # Server down (e.g. mid-restart): the client sees the
                # refusal as a dropped connection and backs off.
                return
            up = asyncio.create_task(
                self._pump_frames(index, client_reader, upstream_writer)
            )
            down = asyncio.create_task(
                self._pump_bytes(upstream_reader, client_writer)
            )
            done, pending = await asyncio.wait(
                {up, down}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(up, down, return_exceptions=True)
        except asyncio.CancelledError:
            pass
        finally:
            for writer in (client_writer, upstream_writer):
                if writer is None:
                    continue
                try:
                    writer.close()
                except Exception:
                    pass
            self._conns.discard(asyncio.current_task())

    async def _pump_frames(
        self,
        index: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Client→server: parse frames, apply the plan, forward."""
        try:
            magic = await reader.readexactly(len(MAGIC))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return
        writer.write(magic)
        if magic != MAGIC:
            # Not the binary protocol (JSONL debugging): pass bytes
            # through unharmed — the plan is defined over frames.
            await self._pump_bytes(reader, writer, primed=True)
            return
        frame = 0
        try:
            while True:
                header = await reader.readexactly(HEADER.size)
                _type, _flags, _res, _id, payload_len = HEADER.unpack(header)
                payload = (
                    await reader.readexactly(payload_len) if payload_len else b""
                )
                fate = self.plan.decide(index, frame)
                frame += 1
                if fate != "pass":
                    self.faults[fate] += 1
                if fate == "drop":
                    continue
                if fate == "reset":
                    self._abort(writer)
                    return
                if fate == "truncate":
                    cut = self.plan.truncate_at(index, frame - 1, payload_len)
                    writer.write(header + payload[:cut])
                    await writer.drain()
                    # Half a frame is on the wire: framing is lost, so
                    # tear the connection down the way a torn TCP
                    # stream would.
                    self._abort(writer)
                    return
                if fate == "corrupt" and payload:
                    damaged = bytearray(payload)
                    damaged[
                        self.plan.corrupt_offset(index, frame - 1, len(damaged))
                    ] ^= 0xFF
                    payload = bytes(damaged)
                elif fate == "delay":
                    await asyncio.sleep(self.plan.delay_seconds)
                writer.write(header + payload)
                if fate == "duplicate":
                    writer.write(header + payload)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return

    async def _pump_bytes(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        primed: bool = False,
    ) -> None:
        """Server→client: verbatim bytes, optionally throttled."""
        throttle = None if primed else self.plan.bytes_per_second
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                writer.write(chunk)
                await writer.drain()
                if throttle is not None:
                    await asyncio.sleep(len(chunk) / throttle)
        except (ConnectionError, OSError):
            return

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        transport = writer.transport
        if transport is not None:
            transport.abort()


class ProxyThread:
    """Run a :class:`ChaosProxy` on a background event loop.

    The synchronous harness for soaks and tests: start it, point a
    client at ``thread.port``, and the plan does the rest.
    """

    def __init__(
        self,
        upstream_port: int,
        plan: Optional[FaultPlan] = None,
        upstream_host: str = "127.0.0.1",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._args = (upstream_port, plan, upstream_host, host, port)
        self.proxy: Optional[ChaosProxy] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._closed: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> "ProxyThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-chaos-proxy",
            daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ConfigurationError("proxy thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    async def _main(self) -> None:
        try:
            self.proxy = ChaosProxy(*self._args)
            await self.proxy.start()
            self.port = self.proxy.port
            self._loop = asyncio.get_running_loop()
            self._closed = asyncio.Event()
        except BaseException as error:  # surface to start()
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        await self._closed.wait()
        await self.proxy.close()

    def retarget(self, port: int, host: Optional[str] = None) -> None:
        """Thread-safe :meth:`ChaosProxy.retarget`."""
        if self.proxy is None:
            raise ConfigurationError("proxy not started")
        self.proxy.retarget(port, host)

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is None or self._closed is None:
            return
        self._loop.call_soon_threadsafe(self._closed.set)
        if self._thread is not None:
            self._thread.join(timeout)
        self._loop = None

    def __enter__(self) -> "ProxyThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
