"""Bit vectors and the D-bit word memory model."""

from .bitset import BitVector, PackedBitVector
from .words import SUPPORTED_WORD_BITS, OperationCounter, OperationRates, WordArray

__all__ = [
    "BitVector",
    "PackedBitVector",
    "WordArray",
    "OperationCounter",
    "OperationRates",
    "SUPPORTED_WORD_BITS",
]
