"""Bit vectors backing the Bloom-filter variants.

Two implementations share one interface:

* :class:`BitVector` — one byte per bit (numpy ``uint8``).  Fastest for
  scalar access from Python and the default backing store for the
  classical/counting/stable filters, where the word-packing of bits is
  not part of the algorithm being studied.
* :class:`PackedBitVector` — bits packed ``word_bits`` to a word on top
  of :class:`~repro.bitset.words.WordArray`, so every bit access is
  accounted as a word read/write.  Used by the op-count benchmarks to
  model what a C implementation would touch.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .words import OperationCounter, WordArray


class BitVector:
    """A fixed-size vector of bits with O(1) get/set.

    Storage is one byte per bit: profligate in real memory but the
    *modeled* size (:attr:`memory_bits`) is ``num_bits``, which is what
    all sizing math uses.
    """

    __slots__ = ("num_bits", "_bits")

    def __init__(self, num_bits: int) -> None:
        if num_bits < 1:
            raise ConfigurationError(f"num_bits must be >= 1, got {num_bits}")
        self.num_bits = num_bits
        self._bits = np.zeros(num_bits, dtype=np.uint8)

    def get(self, index: int) -> bool:
        return bool(self._bits[index])

    def set(self, index: int) -> None:
        self._bits[index] = 1

    def clear(self, index: int) -> None:
        self._bits[index] = 0

    def clear_all(self) -> None:
        self._bits.fill(0)

    def count(self) -> int:
        """Number of set bits."""
        return int(self._bits.sum())

    def all_set(self, indices) -> bool:
        """True when every bit in ``indices`` is 1 (short-circuits)."""
        bits = self._bits
        for index in indices:
            if not bits[index]:
                return False
        return True

    def set_many(self, indices) -> None:
        bits = self._bits
        for index in indices:
            bits[index] = 1

    def __len__(self) -> int:
        return self.num_bits

    @property
    def memory_bits(self) -> int:
        return self.num_bits

    def raw(self) -> "np.ndarray":
        return self._bits


class PackedBitVector:
    """Bits packed into D-bit words with counted word accesses.

    Bit ``i`` lives at offset ``i % word_bits`` of word ``i // word_bits``.
    Every get costs one word read; every set/clear costs one read plus
    one write (read-modify-write), matching what scalar CPU code does.
    """

    __slots__ = ("num_bits", "word_bits", "_words")

    def __init__(
        self,
        num_bits: int,
        word_bits: int = 64,
        counter: OperationCounter | None = None,
    ) -> None:
        if num_bits < 1:
            raise ConfigurationError(f"num_bits must be >= 1, got {num_bits}")
        self.num_bits = num_bits
        self.word_bits = word_bits
        num_words = -(-num_bits // word_bits)
        self._words = WordArray(num_words, word_bits, counter)

    @property
    def counter(self) -> OperationCounter:
        return self._words.counter

    def get(self, index: int) -> bool:
        word = self._words.read_word(index // self.word_bits)
        return bool((word >> (index % self.word_bits)) & 1)

    def set(self, index: int) -> None:
        slot = index // self.word_bits
        word = self._words.read_word(slot)
        self._words.write_word(slot, word | (1 << (index % self.word_bits)))

    def clear(self, index: int) -> None:
        slot = index // self.word_bits
        word = self._words.read_word(slot)
        self._words.write_word(slot, word & ~(1 << (index % self.word_bits)))

    def clear_all(self) -> None:
        self._words.fill(0)

    def count(self) -> int:
        return int(np.unpackbits(self._words.raw().view(np.uint8)).sum())

    def all_set(self, indices) -> bool:
        for index in indices:
            if not self.get(index):
                return False
        return True

    def set_many(self, indices) -> None:
        for index in indices:
            self.set(index)

    def __len__(self) -> int:
        return self.num_bits

    @property
    def memory_bits(self) -> int:
        return self.num_bits

    def raw(self) -> "np.ndarray":
        return self._words.raw()
