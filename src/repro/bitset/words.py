"""D-bit word memory model with operation accounting.

The paper states every running-time result in units of CPU word
reads/writes: "assuming that the CPU can read/write a D-bit word in each
cycle" (Theorem 1).  :class:`WordArray` models exactly that — a flat
array of ``D``-bit words where every access goes through
:meth:`read_word` / :meth:`write_word` and is tallied in an
:class:`OperationCounter`.  The GBF structure and the op-count
benchmarks are built on it, which lets us *measure* the
words-per-element costs the theorems claim instead of asserting them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

SUPPORTED_WORD_BITS = (8, 16, 32, 64)


class OperationCounter:
    """Tallies of the primitive operations a detector performs.

    ``word_reads`` / ``word_writes`` count memory-word accesses;
    ``hash_evaluations`` counts hash-function evaluations (each is O(1)
    arithmetic).  ``elements`` counts processed stream elements so
    per-element averages are one division away.

    ``__slots__`` keeps instances small and attribute access fast — the
    counter sits on the hot path of every detector, scalar and batch.
    """

    __slots__ = ("word_reads", "word_writes", "hash_evaluations", "elements")

    def __init__(
        self,
        word_reads: int = 0,
        word_writes: int = 0,
        hash_evaluations: int = 0,
        elements: int = 0,
    ) -> None:
        self.word_reads = word_reads
        self.word_writes = word_writes
        self.hash_evaluations = hash_evaluations
        self.elements = elements

    def add(self, word_reads: int, word_writes: int = 0) -> None:
        """Bulk-tally word operations from a batched step.

        The batch paths compute whole-segment read/write totals with
        array arithmetic and report them here in one call; the totals
        must equal what the scalar path would have tallied one
        ``+= 1`` at a time (asserted in tests/test_memory_model.py).
        """
        self.word_reads += word_reads
        self.word_writes += word_writes

    def reset(self) -> None:
        self.word_reads = 0
        self.word_writes = 0
        self.hash_evaluations = 0
        self.elements = 0

    def __repr__(self) -> str:
        return (
            f"OperationCounter(word_reads={self.word_reads}, "
            f"word_writes={self.word_writes}, "
            f"hash_evaluations={self.hash_evaluations}, "
            f"elements={self.elements})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OperationCounter):
            return NotImplemented
        return (
            self.word_reads == other.word_reads
            and self.word_writes == other.word_writes
            and self.hash_evaluations == other.hash_evaluations
            and self.elements == other.elements
        )

    @property
    def total_word_ops(self) -> int:
        return self.word_reads + self.word_writes

    def per_element(self) -> "OperationRates":
        """Average operation counts per processed element."""
        n = max(self.elements, 1)
        return OperationRates(
            word_reads=self.word_reads / n,
            word_writes=self.word_writes / n,
            hash_evaluations=self.hash_evaluations / n,
        )

    def merged_with(self, other: "OperationCounter") -> "OperationCounter":
        return OperationCounter(
            word_reads=self.word_reads + other.word_reads,
            word_writes=self.word_writes + other.word_writes,
            hash_evaluations=self.hash_evaluations + other.hash_evaluations,
            elements=self.elements + other.elements,
        )


@dataclass(frozen=True)
class OperationRates:
    """Per-element averages derived from an :class:`OperationCounter`."""

    word_reads: float
    word_writes: float
    hash_evaluations: float

    @property
    def total_word_ops(self) -> float:
        return self.word_reads + self.word_writes


_DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}


class WordArray:
    """A flat array of ``num_words`` words of ``word_bits`` bits each.

    All reads and writes are counted.  Values are plain Python ints in
    ``[0, 2**word_bits)``; storage is a numpy array of the matching
    unsigned dtype so memory usage mirrors the modeled footprint.
    """

    __slots__ = ("word_bits", "num_words", "counter", "_words", "_mask")

    def __init__(
        self,
        num_words: int,
        word_bits: int = 64,
        counter: OperationCounter | None = None,
    ) -> None:
        if word_bits not in SUPPORTED_WORD_BITS:
            raise ConfigurationError(
                f"word_bits must be one of {SUPPORTED_WORD_BITS}, got {word_bits}"
            )
        if num_words < 0:
            raise ConfigurationError(f"num_words must be >= 0, got {num_words}")
        self.word_bits = word_bits
        self.num_words = num_words
        self.counter = counter if counter is not None else OperationCounter()
        self._words = np.zeros(num_words, dtype=_DTYPES[word_bits])
        self._mask = (1 << word_bits) - 1

    def read_word(self, index: int) -> int:
        self.counter.word_reads += 1
        return int(self._words[index])

    def write_word(self, index: int, value: int) -> None:
        self.counter.word_writes += 1
        self._words[index] = value & self._mask

    def fill(self, value: int) -> None:
        """Bulk-initialize every word to ``value``, counted as N writes."""
        self.counter.word_writes += self.num_words
        self._words.fill(value & self._mask)

    @property
    def memory_bits(self) -> int:
        return self.num_words * self.word_bits

    def raw(self) -> "np.ndarray":
        """Uncounted view of the backing array (for tests and snapshots)."""
        return self._words
