"""Cluster serving tier: scale the serve path past one process.

The pieces, front to back:

- :class:`HashRing` — deterministic consistent-hash placement of the
  global shards onto named nodes (fixed shard count, movable ownership).
- :class:`ClusterSlice` / :class:`TimeClusterSlice` /
  :func:`split_sharded` — node-local slices of one global sharded
  detector, bit-identical shard-for-shard to the single-process run.
- :class:`ClusterRouter` / :class:`RouterThread` — the stateless RPK1
  scatter/gather front that fans batches across nodes and reassembles
  verdict streams in order.
- :class:`LocalCluster` — router + N in-process nodes with the full
  operational surface: checkpoint barriers, kill/restore failover,
  checkpoint-shipping rebalance, journaled drain manifests.

See docs/serving.md §"Cluster topology" and docs/operations.md for the
wire-level contract and runbooks.
"""

from .hashring import HashRing
from .local import (
    LocalCluster,
    MANIFEST_KIND,
    read_manifest,
    rebalance_checkpoints,
)
from .partition import (
    ClusterSlice,
    TimeClusterSlice,
    build_slice_blob,
    slice_shard_blobs,
    split_sharded,
)
from .router import (
    ClusterConfig,
    ClusterRouter,
    NodeSpec,
    RouterThread,
    merge_verdict_payloads,
    split_batch_records,
)

__all__ = [
    "HashRing",
    "LocalCluster",
    "MANIFEST_KIND",
    "read_manifest",
    "rebalance_checkpoints",
    "ClusterSlice",
    "TimeClusterSlice",
    "split_sharded",
    "slice_shard_blobs",
    "build_slice_blob",
    "ClusterConfig",
    "ClusterRouter",
    "NodeSpec",
    "RouterThread",
    "split_batch_records",
    "merge_verdict_payloads",
]
