"""Consistent-hash placement of global shards onto serve nodes.

The cluster tier keeps the *shard* count fixed — it is the unit of
detector state, chosen once per deployment — and moves only the
shard→node *assignment* when the fleet resizes.  That split is what
makes rebalancing a checkpoint-shipping problem instead of a
state-rebuilding one: shard ``s`` of an ``N``-node cluster holds
byte-identical filter state to shard ``s`` of an ``M``-node cluster
(and to shard ``s`` of a single-process
:class:`~repro.detection.sharded.ShardedDetector`), so growing the
fleet means handing a few shards' existing checkpoint blobs to new
owners, never re-deriving anything.

The ring hashes each node name to ``replicas`` points and each shard id
to one point; a shard belongs to the first node point at or clockwise
of its own.  Hashing is splitmix64-based (the same deterministic
finalizer the routing layer uses — never Python's salted ``hash()``),
so an assignment is a pure function of ``(names, replicas,
total_shards)`` and every process in the cluster derives the same one.
Adding or removing a node only moves the shards whose successor point
changed — the classic consistent-hashing minimal-movement property.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..hashing.family import _splitmix64

__all__ = ["HashRing"]

_MASK64 = (1 << 64) - 1

#: Mixed into shard-id points so shard keys live in a different family
#: than node points (and than the click-routing constant in
#: :func:`repro.detection.sharded.default_router`).
_SHARD_SALT = 0xD1B54A32D192ED03


def _fnv1a64(data: bytes) -> int:
    """FNV-1a folding of a node name into a u64 seed (deterministic)."""
    value = 0xCBF29CE484222325
    for byte in data:
        value = ((value ^ byte) * 0x100000001B3) & _MASK64
    return value


class HashRing:
    """A consistent-hash ring over named nodes.

    >>> ring = HashRing(["node-0", "node-1"])
    >>> assignment = ring.assign(8)   # shard index -> node index
    """

    def __init__(self, names: Sequence[str], replicas: int = 64) -> None:
        names = list(names)
        if not names:
            raise ConfigurationError("need at least one node name")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.names = tuple(names)
        self.replicas = replicas
        points: List[int] = []
        owners: List[int] = []
        for index, name in enumerate(self.names):
            base = _fnv1a64(name.encode("utf-8"))
            for replica in range(replicas):
                points.append(_splitmix64((base + replica) & _MASK64))
                owners.append(index)
        order = np.argsort(np.asarray(points, dtype=np.uint64), kind="stable")
        self._points = np.asarray(points, dtype=np.uint64)[order]
        self._owners = np.asarray(owners, dtype=np.int64)[order]

    def assign(self, total_shards: int) -> "np.ndarray":
        """Shard→node assignment: int64 array of node indices, one per shard."""
        if total_shards < 1:
            raise ConfigurationError(
                f"total_shards must be >= 1, got {total_shards}"
            )
        keys = np.fromiter(
            (
                _splitmix64((shard ^ _SHARD_SALT) & _MASK64)
                for shard in range(total_shards)
            ),
            dtype=np.uint64,
            count=total_shards,
        )
        slots = np.searchsorted(self._points, keys, side="left")
        slots %= self._points.shape[0]  # wrap past the last point
        return self._owners[slots]

    def node_of(self, shard: int, total_shards: int) -> int:
        """The owning node index of one shard (scalar :meth:`assign`)."""
        return int(self.assign(total_shards)[shard])

    def spread(self, total_shards: int) -> Dict[str, int]:
        """Shards owned per node name — balance diagnostics."""
        assignment = self.assign(total_shards)
        return {
            name: int(np.count_nonzero(assignment == index))
            for index, name in enumerate(self.names)
        }
