"""Node-local slices of one global :class:`ShardedDetector`.

A cluster node does not run "a detector with fewer shards" — it runs a
*slice* of the one global sharded detector: the subset of the global
shards the consistent-hash ring assigned to it, each shard keeping its
global index, seed, and window size.  Clicks are still routed by the
global ``route_batch(identifiers, total_shards)``; a slice merely
refuses shards it does not own.  That is the whole parity argument:
shard ``s`` on node ``n`` is constructed and fed exactly like shard
``s`` of a single-process ``ShardedDetector``, so its filter bytes —
and therefore the cluster's verdict stream — are bit-identical to the
single-process run.

Slices checkpoint under their own frame kinds (``cluster-slice`` /
``cluster-time-slice``) whose payload is the concatenation of the owned
shards' individual :func:`save_detector` blobs.  Keeping per-shard blobs
addressable inside the frame is what makes rebalancing cheap:
:func:`slice_shard_blobs` / :func:`build_slice_blob` regroup raw CRC'd
blobs between nodes without ever deserializing a filter.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

import numpy as np

from ..core.checkpoint import (
    CheckpointError,
    load_detector,
    pack_frame,
    register_checkpoint_kind,
    save_detector,
    unpack_frame,
)
from ..detection.sharded import (
    ShardedDetector,
    TimeShardedDetector,
    default_router,
    route_batch,
    shard_groups,
)
from ..errors import ConfigurationError

__all__ = [
    "ClusterSlice",
    "TimeClusterSlice",
    "split_sharded",
    "slice_shard_blobs",
    "build_slice_blob",
]


class _SliceBase:
    """Shared plumbing for count- and time-based cluster slices."""

    kind: str = ""

    def __init__(self, total_shards: int, shards: Dict[int, object]) -> None:
        total_shards = int(total_shards)
        if total_shards < 1:
            raise ConfigurationError(
                f"total_shards must be >= 1, got {total_shards}"
            )
        for shard in shards:
            if not 0 <= int(shard) < total_shards:
                raise ConfigurationError(
                    f"shard id {shard} out of range [0, {total_shards})"
                )
        self.total_shards = total_shards
        #: global shard id -> detector, sorted for deterministic blobs
        self.shards: Dict[int, object] = {
            int(shard): detector for shard, detector in sorted(shards.items())
        }
        self._scalar_router = default_router(total_shards)

    @property
    def owned(self) -> Tuple[int, ...]:
        return tuple(self.shards)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def memory_bits(self) -> int:
        return sum(shard.memory_bits for shard in self.shards.values())

    def _owned_detector(self, shard: int):
        try:
            return self.shards[shard]
        except KeyError:
            raise ConfigurationError(
                f"shard {shard} routed to a slice owning only {self.owned}; "
                "the router's shard->node assignment disagrees with this "
                "node's slice"
            ) from None

    def checkpoint_shard(self, shard: int) -> bytes:
        """One owned shard's blob — comparable byte-for-byte with
        :meth:`ShardedDetector.checkpoint_shard` of the same index."""
        return save_detector(self._owned_detector(int(shard)))

    def checkpoint_state(self) -> bytes:
        return save_detector(self)

    def telemetry_snapshot(self) -> Dict[str, object]:
        elements = 0
        duplicates = 0
        for shard in self.shards.values():
            elements += shard.counter.elements
            duplicates += getattr(shard, "duplicates", 0)
        return {
            "gauges": {
                "owned_shards": float(len(self.shards)),
                "total_shards": float(self.total_shards),
                "observed_duplicate_rate": (
                    duplicates / elements if elements else 0.0
                ),
            },
            "counters": {"elements": elements, "duplicates": duplicates},
        }


class ClusterSlice(_SliceBase):
    """Count-based slice: the node-local face of a ``ShardedDetector``."""

    kind = "cluster-slice"

    def process(self, identifier: int) -> bool:
        shard = self._scalar_router(int(identifier))
        return self._owned_detector(shard).process(int(identifier))

    def process_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        if identifiers.ndim != 1:
            raise ValueError(
                f"identifiers must be 1-D, got {identifiers.ndim}-D"
            )
        out = np.empty(identifiers.shape[0], dtype=bool)
        if identifiers.shape[0] == 0:
            return out
        for shard, positions in shard_groups(
            route_batch(identifiers, self.total_shards)
        ):
            out[positions] = self._owned_detector(shard).process_batch(
                identifiers[positions]
            )
        return out

    def query(self, identifier: int) -> bool:
        shard = self._scalar_router(int(identifier))
        return self._owned_detector(shard).query(int(identifier))


class TimeClusterSlice(_SliceBase):
    """Time-based slice: the node-local face of a ``TimeShardedDetector``."""

    kind = "cluster-time-slice"

    def process_at(self, identifier: int, timestamp: float) -> bool:
        shard = self._scalar_router(int(identifier))
        return self._owned_detector(shard).process_at(
            int(identifier), float(timestamp)
        )

    def process_batch_at(
        self, identifiers: "np.ndarray", timestamps: "np.ndarray"
    ) -> "np.ndarray":
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if identifiers.ndim != 1:
            raise ValueError(
                f"identifiers must be 1-D, got {identifiers.ndim}-D"
            )
        if timestamps.shape != identifiers.shape:
            raise ValueError(
                f"timestamps shape {timestamps.shape} != identifiers "
                f"shape {identifiers.shape}"
            )
        out = np.empty(identifiers.shape[0], dtype=bool)
        if identifiers.shape[0] == 0:
            return out
        for shard, positions in shard_groups(
            route_batch(identifiers, self.total_shards)
        ):
            out[positions] = self._owned_detector(shard).process_batch_at(
                identifiers[positions], timestamps[positions]
            )
        return out


def split_sharded(
    detector: Union[ShardedDetector, TimeShardedDetector],
    assignment: "np.ndarray",
    num_nodes: int,
) -> List[_SliceBase]:
    """Split one sharded detector into ``num_nodes`` slices.

    The slices *take ownership of the detector's shard objects* — they
    are the same filter instances, not copies — so a freshly split
    fleet is bit-identical to the reference by construction.  The
    reference detector must not be used afterwards.
    """
    if isinstance(detector, ShardedDetector):
        cls: type = ClusterSlice
    elif isinstance(detector, TimeShardedDetector):
        cls = TimeClusterSlice
    else:
        raise ConfigurationError(
            f"cannot split a {type(detector).__name__}; need a "
            "ShardedDetector or TimeShardedDetector"
        )
    if not detector._router_is_default:
        raise ConfigurationError(
            "cluster parity requires the default router; custom routers "
            "cannot be replayed by the cluster tier"
        )
    if detector.is_degraded:
        raise ConfigurationError(
            "cannot split a degraded sharded detector; restore its shards "
            "first"
        )
    total = detector.num_shards
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (total,):
        raise ConfigurationError(
            f"assignment length {assignment.shape} does not match "
            f"{total} shards"
        )
    if num_nodes < 1:
        raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
    if assignment.size and not (
        0 <= int(assignment.min()) and int(assignment.max()) < num_nodes
    ):
        raise ConfigurationError(
            f"assignment references nodes outside [0, {num_nodes})"
        )
    return [
        cls(
            total,
            {
                shard: detector.shards[shard]
                for shard in range(total)
                if int(assignment[shard]) == node
            },
        )
        for node in range(num_nodes)
    ]


# ----------------------------------------------------------------------
# Checkpoint kinds.  The payload keeps each owned shard's own CRC'd
# frame addressable so rebalancing can regroup raw blobs between nodes.
# ----------------------------------------------------------------------

def _save_slice(detector: _SliceBase) -> bytes:
    owned = list(detector.shards)
    blobs = [save_detector(detector.shards[shard]) for shard in owned]
    header = {
        "kind": detector.kind,
        "total_shards": detector.total_shards,
        "owned": owned,
        "lengths": [len(blob) for blob in blobs],
    }
    return pack_frame(header, b"".join(blobs))


def _split_slice_payload(
    header: Dict[str, object], payload: bytes
) -> Tuple[int, Dict[int, bytes]]:
    try:
        total = int(header["total_shards"])
        owned = [int(shard) for shard in header["owned"]]
        lengths = [int(length) for length in header["lengths"]]
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"bad cluster-slice checkpoint header: {error}"
        ) from error
    if len(owned) != len(lengths) or sum(lengths) != len(payload):
        raise CheckpointError("cluster-slice checkpoint payload mismatch")
    blobs: Dict[int, bytes] = {}
    offset = 0
    for shard, length in zip(owned, lengths):
        blobs[shard] = payload[offset : offset + length]
        offset += length
    return total, blobs


def _load_slice(cls):
    def load(header: Dict[str, object], payload: bytes) -> _SliceBase:
        total, blobs = _split_slice_payload(header, payload)
        return cls(
            total,
            {shard: load_detector(blob) for shard, blob in blobs.items()},
        )

    return load


def slice_shard_blobs(blob: bytes) -> Tuple[int, str, Dict[int, bytes]]:
    """``(total_shards, kind, {shard: raw blob})`` from a slice checkpoint.

    Pure byte surgery — no detector is deserialized — so rebalancing can
    ship shard state between nodes at checkpoint speed.  Each returned
    blob still carries its own magic and CRC; corruption surfaces when
    (and only when) someone loads it.
    """
    header, payload = unpack_frame(blob)
    kind = header.get("kind")
    if kind not in (ClusterSlice.kind, TimeClusterSlice.kind):
        raise CheckpointError(
            f"expected a cluster-slice checkpoint, got kind {kind!r}"
        )
    total, blobs = _split_slice_payload(header, payload)
    return total, str(kind), blobs


def build_slice_blob(
    kind: str, total_shards: int, shard_blobs: Dict[int, bytes]
) -> bytes:
    """Inverse of :func:`slice_shard_blobs`: regroup raw shard blobs
    into a loadable slice checkpoint for a (possibly different) node."""
    if kind not in (ClusterSlice.kind, TimeClusterSlice.kind):
        raise CheckpointError(f"unknown cluster-slice kind {kind!r}")
    owned = sorted(int(shard) for shard in shard_blobs)
    blobs = [shard_blobs[shard] for shard in owned]
    header = {
        "kind": kind,
        "total_shards": int(total_shards),
        "owned": owned,
        "lengths": [len(blob) for blob in blobs],
    }
    return pack_frame(header, b"".join(blobs))


register_checkpoint_kind(
    ClusterSlice.kind, ClusterSlice, _save_slice, _load_slice(ClusterSlice)
)
register_checkpoint_kind(
    TimeClusterSlice.kind,
    TimeClusterSlice,
    _save_slice,
    _load_slice(TimeClusterSlice),
)
