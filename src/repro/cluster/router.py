"""Consistent-hash scatter/gather router: RPK1 in front, N nodes behind.

The router is the cluster's only stateful-looking component that holds
no detector state at all.  It accepts ordinary RPK1 connections —
clients need no cluster awareness; ``ServeClient`` works unchanged —
and for every ``BATCH`` frame:

1. routes each record's identifier with the *same* partition function
   as :class:`~repro.detection.sharded.ShardedDetector`
   (``route_batch(identifiers, total_shards)``), then maps shards to
   nodes through the consistent-hash assignment;
2. slices the zero-copy record view into per-node sub-frames (one
   structured-array fancy-index + ``tobytes`` per node; when one node
   covers the whole batch the original payload bytes are forwarded
   untouched);
3. submits the sub-frames down pipelined per-node connections, under a
   per-node inflight-byte budget checked *atomically* across all target
   nodes — either every slice is admitted or the whole batch is refused
   ``OVERLOADED`` with nothing forwarded;
4. gathers the per-node verdict payloads and scatters them back into
   original record order, answering one ``VERDICTS`` frame whose bytes
   are identical to what a single-process sharded detector would have
   produced.

Responses stay in per-connection FIFO order (the same pre-enqueued
future discipline :class:`~repro.serve.server.ClickIngestServer` uses),
so pipelined clients observe single-server semantics.

Exactly-once across node failover
---------------------------------
A client's ``HELLO`` identity is forwarded on every node connection, so
``(client_id, batch_seq)`` stays the idempotency key end to end.  Two
mechanisms keep PR 6's delivery guarantee alive when a node dies
mid-stream:

* **Ack-gated journal replay.**  Each node channel keeps a bounded
  journal of the sub-frames the node answered since the last
  cluster-wide checkpoint barrier.  On reconnect the node's
  ``HELLO_ACK`` reports its applied floor; if that floor is *behind*
  what this channel has seen answered, the node lost state (it restored
  from an older checkpoint) and the channel replays exactly the
  journaled frames above the floor — the node's own dedup window makes
  replays of anything it *does* remember harmless.  A node that comes
  back at the tip replays nothing.
* **RETRY, never OVERLOADED, on partial scatter.**  If a node fails
  after sibling nodes already applied their slices, answering
  ``OVERLOADED`` would invite the client to resubmit under a *new*
  sequence number — double-applying the healthy slices.  ``RETRY``
  makes the client resend the *same* ``batch_seq``, which every node
  that already applied it answers from its dedup window.  Sessions
  without ``HELLO`` have no idempotency key, so a partial scatter
  failure is answered ``ERROR`` (dead-letter semantics) instead of
  pretending a safe retry exists.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..detection.sharded import route_batch, shard_groups
from ..errors import ConfigurationError, ProtocolError
from ..serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FLAG_CHECKSUM,
    FLAG_TRACE,
    FRAME_BATCH,
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_HELLO_ACK,
    FRAME_OVERLOADED,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RETRY,
    FRAME_VERDICTS,
    HEADER,
    MAGIC,
    RECORD_DTYPE,
    TRACE_CONTEXT,
    _U64,
    checksum16,
    decode_batch_payload,
    decode_hello_payload,
    encode_frame,
    encode_hello,
    encode_jsonl_line,
    split_trace_payload,
)
from ..telemetry import TelemetrySession
from .hashring import HashRing

__all__ = [
    "NodeSpec",
    "ClusterConfig",
    "ClusterRouter",
    "RouterThread",
    "split_batch_records",
    "merge_verdict_payloads",
]


@dataclass(frozen=True)
class NodeSpec:
    """Address of one serve node behind the router."""

    host: str
    port: int
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", f"{self.host}:{self.port}")


@dataclass
class ClusterConfig:
    """Router knobs (see docs/serving.md §"Cluster topology")."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Fixed global shard count — must equal the fleet's
    #: ``ShardedDetector.num_shards``; node counts may change, this may
    #: not (it is the unit of checkpointed state).
    total_shards: int = 8
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: Router-wide admitted-but-unanswered payload bytes.
    max_inflight_bytes: int = 32 * 1024 * 1024
    #: Per (session x node) channel budget; refusing here keeps one slow
    #: node from absorbing the whole router budget.
    node_inflight_bytes: int = 4 * 1024 * 1024
    #: Reconnect schedule for a lost node connection: attempts x
    #: exponential backoff.  The product bounds how long a kill+restore
    #: may take before inflight batches fail over to client RETRY.
    node_connect_attempts: int = 60
    node_backoff: float = 0.05
    node_backoff_max: float = 0.5
    #: Per-channel journal of answered sub-frames kept for ack-gated
    #: replay; cleared at every cluster checkpoint barrier.  Overflow
    #: drops the oldest entry and is surfaced in telemetry — size it to
    #: cover the batches a client window can have between checkpoints.
    journal_entries: int = 4096

    def __post_init__(self) -> None:
        if self.total_shards < 1:
            raise ConfigurationError(
                f"total_shards must be >= 1, got {self.total_shards}"
            )
        if self.max_inflight_bytes <= 0 or self.node_inflight_bytes <= 0:
            raise ConfigurationError("inflight budgets must be positive")
        if self.node_connect_attempts < 1:
            raise ConfigurationError("node_connect_attempts must be >= 1")
        if self.journal_entries < 1:
            raise ConfigurationError("journal_entries must be >= 1")


# ----------------------------------------------------------------------
# Pure scatter/gather helpers (property-tested in tests/test_cluster.py)
# ----------------------------------------------------------------------

def split_batch_records(
    records: bytes, total_shards: int, assignment: "np.ndarray"
) -> List[Tuple[int, "np.ndarray", bytes]]:
    """Split BATCH record bytes into per-node groups.

    Returns ``[(node, positions, sub_record_bytes), ...]`` where
    ``positions`` are the records' original batch offsets in arrival
    order.  Routing is the global ``route_batch`` composed with the
    shard→node ``assignment`` — exactly what a single sharded detector
    followed by node grouping would do.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    array = np.frombuffer(records, dtype=RECORD_DTYPE)
    if array.shape[0] == 0:
        return []
    node_of = assignment[route_batch(array["identifier"], total_shards)]
    return [
        (int(node), positions, array[positions].tobytes())
        for node, positions in shard_groups(node_of)
    ]


def merge_verdict_payloads(
    count: int, parts: Sequence[Tuple["np.ndarray", bytes]]
) -> bytes:
    """Scatter per-node verdict payloads back into batch order.

    Inverse of :func:`split_batch_records` on the response path: each
    part is ``(positions, verdict_bytes)`` and the result is the
    ``count``-byte payload a single server would have produced.
    """
    out = np.zeros(count, dtype=np.uint8)
    filled = 0
    for positions, payload in parts:
        part = np.frombuffer(payload, dtype=np.uint8)
        if part.shape[0] != positions.shape[0]:
            raise ProtocolError(
                f"node answered {part.shape[0]} verdicts for "
                f"{positions.shape[0]} records"
            )
        out[positions] = part
        filled += int(part.shape[0])
    if filled != count:
        raise ProtocolError(
            f"gathered {filled} verdicts for a {count}-record batch"
        )
    return out.tobytes()


# ----------------------------------------------------------------------
# Per-(session x node) upstream channel
# ----------------------------------------------------------------------

#: Placeholder in the response-order queue for journal-replay frames
#: whose responses must be consumed and dropped, not matched.
_DISCARD = object()


class _ChannelEntry:
    __slots__ = ("seq", "frame", "nbytes", "future", "sent_epoch", "resolved")

    def __init__(self, seq: int, frame: bytes, nbytes: int, future) -> None:
        self.seq = seq
        self.frame = frame
        self.nbytes = nbytes
        self.future = future
        self.sent_epoch = -1
        self.resolved = False


class _NodeChannel:
    """One pipelined upstream connection from a session to a node.

    Results resolve to ``(kind, payload)`` tuples with kind one of
    ``"verdicts"``, ``"overloaded"``, ``"retry"``, ``"error"``,
    ``"down"``.
    """

    def __init__(self, router: "ClusterRouter", session: "_Session", node_index: int) -> None:
        self.router = router
        self.session = session
        self.node_index = node_index
        self.node = router.nodes[node_index]
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.hello_ack = 0
        self.inflight_bytes = 0
        self.highest_answered = 0
        #: Answered (seq, frame) pairs since the last checkpoint barrier.
        self.journal: "deque" = deque()
        #: Entries awaiting a response, in submission (seq) order.
        self._pending: List[_ChannelEntry] = []
        #: Expected-response order on the current connection.
        self._send_order: "deque" = deque()
        self._epoch = 0
        self._lock = asyncio.Lock()
        self._closed = False
        self._reader_task: Optional[asyncio.Task] = None
        self._tasks: Set[asyncio.Task] = set()

    # -- public surface -------------------------------------------------

    def submit(self, seq: int, frame: bytes, nbytes: int) -> "asyncio.Future":
        future = asyncio.get_running_loop().create_future()
        entry = _ChannelEntry(seq, frame, nbytes, future)
        self._pending.append(entry)
        self.inflight_bytes += nbytes
        self._spawn(self._send(entry))
        return future

    async def ensure_connected(self) -> bool:
        async with self._lock:
            if self._closed:
                return False
            if self.writer is not None:
                return True
            return await self._connect_locked()

    def close(self, reason: str = "channel closed") -> None:
        if self._closed:
            return
        self._closed = True
        for task in list(self._tasks):
            task.cancel()
        self._disconnect()
        self._fail_pending(reason)

    # -- internals ------------------------------------------------------

    def _spawn(self, coro) -> None:
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _send(self, entry: _ChannelEntry) -> None:
        async with self._lock:
            if entry.resolved or self._closed:
                return
            if self.writer is None:
                # A successful connect resends every pending entry,
                # including this one, in submission order.
                await self._connect_locked()
                return
            if entry.sent_epoch == self._epoch:
                return  # already on the wire for this connection
            try:
                self.writer.write(entry.frame)
                entry.sent_epoch = self._epoch
                self._send_order.append(entry)
                await self.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                self._disconnect()
                await self._connect_locked()

    async def _reconnect(self) -> None:
        async with self._lock:
            if self._closed or self.writer is not None:
                return
            await self._connect_locked()

    async def _connect_locked(self) -> bool:
        config = self.router.config
        delay = config.node_backoff
        for _attempt in range(config.node_connect_attempts):
            if self._closed:
                return False
            try:
                reader, writer = await asyncio.open_connection(
                    self.node.host, self.node.port, limit=config.max_frame_bytes
                )
            except OSError:
                await asyncio.sleep(delay)
                delay = min(delay * 1.5, config.node_backoff_max)
                continue
            try:
                writer.write(MAGIC)
                ack = 0
                if self.session.client_id is not None:
                    writer.write(encode_hello(0, self.session.client_id))
                    await writer.drain()
                    header = await reader.readexactly(HEADER.size)
                    frame_type, _f, _r, _rid, payload_len = HEADER.unpack(header)
                    payload = await reader.readexactly(payload_len)
                    if frame_type != FRAME_HELLO_ACK:
                        raise ProtocolError(
                            f"expected HELLO_ACK, got 0x{frame_type:02X}"
                        )
                    ack = decode_hello_payload(payload)
                else:
                    await writer.drain()
            except (
                ProtocolError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.IncompleteReadError,
            ):
                try:
                    writer.close()
                except Exception:
                    pass
                await asyncio.sleep(delay)
                delay = min(delay * 1.5, config.node_backoff_max)
                continue
            self.reader, self.writer = reader, writer
            self.hello_ack = ack
            self._epoch += 1
            self._send_order = deque()
            replayed = 0
            if self.session.client_id is not None and ack < self.highest_answered:
                # The node's applied floor is behind what this channel
                # has seen answered: it restored from an older
                # checkpoint.  Roll it forward by replaying exactly the
                # journaled sub-frames above its floor; its dedup window
                # absorbs anything it does remember.
                for seq, frame in self.journal:
                    if seq > ack:
                        writer.write(frame)
                        self._send_order.append(_DISCARD)
                        replayed += 1
            for entry in self._pending:
                writer.write(entry.frame)
                entry.sent_epoch = self._epoch
                self._send_order.append(entry)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                self._disconnect()
                await asyncio.sleep(delay)
                delay = min(delay * 1.5, config.node_backoff_max)
                continue
            if replayed:
                self.router._replays_total.inc(replayed)
            self.router._connects_total.labels(node=self.node.name).inc()
            self._reader_task = asyncio.create_task(self._reader_loop(reader))
            self._tasks.add(self._reader_task)
            self._reader_task.add_done_callback(self._tasks.discard)
            return True
        self._fail_pending(f"node {self.node.name} unreachable")
        return False

    async def _reader_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                header = await reader.readexactly(HEADER.size)
                frame_type, _flags, _reserved, _rid, payload_len = HEADER.unpack(
                    header
                )
                payload = await reader.readexactly(payload_len)
                if not self._send_order:
                    continue  # unsolicited; nothing to match
                slot = self._send_order.popleft()
                if slot is _DISCARD:
                    continue  # journal replay: node caught up
                if frame_type == FRAME_VERDICTS:
                    self._resolve(slot, ("verdicts", payload))
                elif frame_type == FRAME_OVERLOADED:
                    self._resolve(slot, ("overloaded", payload))
                elif frame_type == FRAME_RETRY:
                    self._resolve(slot, ("retry", payload))
                elif frame_type == FRAME_ERROR:
                    self._resolve(slot, ("error", payload))
                else:
                    # Out-of-band frame (PONG/HELLO_ACK): not a match.
                    self._send_order.appendleft(slot)
        except asyncio.CancelledError:
            return
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            OSError,
        ):
            pass
        if self._closed:
            return
        self._disconnect()
        if self._pending:
            # In-flight work: chase the node immediately (it may be
            # restarting).  Idle channels reconnect lazily on next use.
            self._spawn(self._reconnect())

    def _disconnect(self) -> None:
        task = self._reader_task
        self._reader_task = None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
        writer = self.writer
        self.reader = None
        self.writer = None
        self._send_order = deque()
        if writer is not None:
            try:
                writer.close()
            except Exception:
                pass

    def _resolve(self, entry: _ChannelEntry, result: Tuple[str, bytes]) -> None:
        if entry.resolved:
            return
        entry.resolved = True
        try:
            self._pending.remove(entry)
        except ValueError:
            pass
        self.inflight_bytes -= entry.nbytes
        if result[0] == "verdicts":
            if entry.seq > self.highest_answered:
                self.highest_answered = entry.seq
            if self.session.client_id is not None:
                self.journal.append((entry.seq, entry.frame))
                while len(self.journal) > self.router.config.journal_entries:
                    self.journal.popleft()
                    self.router._journal_overflow_total.inc()
        if not entry.future.done():
            entry.future.set_result(result)

    def _fail_pending(self, reason: str) -> None:
        message = reason.encode()
        for entry in list(self._pending):
            self._resolve(entry, ("down", message))


# ----------------------------------------------------------------------
# Client session
# ----------------------------------------------------------------------

class _Session:
    """One client connection: reader, FIFO sender, per-node channels."""

    def __init__(
        self,
        router: "ClusterRouter",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.router = router
        self._reader = reader
        self._writer = writer
        self.client_id: Optional[int] = None
        self.generation = router._generation
        self.channels: Dict[int, _NodeChannel] = {}
        self.responses: "asyncio.Queue" = asyncio.Queue()

    async def run(self) -> None:
        sender = asyncio.create_task(self._sender_loop())
        try:
            await self._reader_loop()
        except asyncio.CancelledError:
            pass  # drain: stop reading; pending responses still flush
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            OSError,
        ):
            pass
        finally:
            self._close_channels("client connection closed")
            self.responses.put_nowait(None)
            try:
                await asyncio.shield(sender)
            except asyncio.CancelledError:
                await sender
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _close_channels(self, reason: str) -> None:
        for channel in self.channels.values():
            channel.close(reason)
        self.channels = {}

    def _channel(self, node_index: int) -> _NodeChannel:
        channel = self.channels.get(node_index)
        if channel is None:
            channel = _NodeChannel(self.router, self, node_index)
            self.channels[node_index] = channel
        return channel

    def _respond_now(self, data: bytes) -> None:
        future = asyncio.get_running_loop().create_future()
        future.set_result(data)
        self.responses.put_nowait((future, 0))

    # -- frames ---------------------------------------------------------

    async def _reader_loop(self) -> None:
        reader = self._reader
        try:
            sniff = await reader.readexactly(len(MAGIC))
        except asyncio.IncompleteReadError:
            return
        if sniff != MAGIC:
            # The router speaks only the binary protocol: JSONL requires
            # running the identifier scheme, which belongs on a node.
            self._respond_now(
                encode_jsonl_line(
                    {
                        "id": 0,
                        "error": "cluster router speaks binary RPK1 only; "
                        "connect to a serve node for JSONL debugging",
                    }
                )
            )
            return
        while True:
            try:
                header = await reader.readexactly(HEADER.size)
            except asyncio.IncompleteReadError:
                return
            frame_type, flags, reserved, request_id, payload_len = HEADER.unpack(
                header
            )
            if payload_len > self.router.config.max_frame_bytes:
                self._respond_now(
                    encode_frame(FRAME_ERROR, request_id, b"payload too large")
                )
                return  # stream sync is not worth recovering
            payload = await reader.readexactly(payload_len)
            if frame_type == FRAME_PING:
                self._respond_now(encode_frame(FRAME_PONG, request_id))
                continue
            if frame_type == FRAME_HELLO:
                await self._handle_hello(request_id, payload)
                continue
            if frame_type != FRAME_BATCH:
                reason = f"unknown frame type 0x{frame_type:02X}"
                self._respond_now(
                    encode_frame(FRAME_ERROR, request_id, reason.encode())
                )
                continue
            await self._handle_batch(request_id, flags, reserved, payload)

    async def _handle_hello(self, request_id: int, payload: bytes) -> None:
        try:
            client_id = decode_hello_payload(payload)
        except ProtocolError as error:
            self._respond_now(
                encode_frame(FRAME_ERROR, request_id, str(error).encode())
            )
            return
        if self.client_id != client_id:
            self._close_channels("client identity changed")
        self.client_id = client_id
        self.generation = self.router._generation
        # Eagerly open every node channel so each node learns the
        # identity up front; the ack is the *minimum* applied floor
        # across nodes — the client may safely resend anything above it
        # (nodes that already applied a sequence replay it from dedup).
        acks = []
        for node_index in range(len(self.router.nodes)):
            channel = self._channel(node_index)
            if await channel.ensure_connected():
                acks.append(channel.hello_ack)
            else:
                acks.append(0)
        applied = min(acks) if acks else 0
        self._respond_now(
            encode_frame(FRAME_HELLO_ACK, request_id, _U64.pack(applied))
        )

    async def _handle_batch(
        self, request_id: int, flags: int, reserved: int, payload: bytes
    ) -> None:
        router = self.router
        config = router.config
        if flags & FLAG_CHECKSUM and checksum16(payload) != reserved:
            router._corrupt_total.inc()
            self._respond_now(
                encode_frame(
                    FRAME_RETRY, request_id, b"payload damaged in transit"
                )
            )
            return
        if router._paused:
            router._refused_total.inc()
            self._respond_now(
                encode_frame(FRAME_OVERLOADED, request_id, b"router draining")
            )
            return
        try:
            trace, records = split_trace_payload(flags, payload)
            identifiers, _timestamps = decode_batch_payload(records)
        except ProtocolError as error:
            self._respond_now(
                encode_frame(FRAME_ERROR, request_id, str(error).encode())
            )
            return
        count = int(identifiers.shape[0])
        if count == 0:
            self._respond_now(encode_frame(FRAME_VERDICTS, request_id, b""))
            return
        if self.generation != router._generation:
            self._close_channels("cluster reconfigured")
            self.generation = router._generation
        wire = len(payload)
        if router._inflight_bytes + wire > config.max_inflight_bytes:
            router._refused_total.inc()
            self._respond_now(
                encode_frame(
                    FRAME_OVERLOADED, request_id, b"router inflight budget full"
                )
            )
            return
        record_array = np.frombuffer(records, dtype=RECORD_DTYPE)
        node_of = router.assignment[route_batch(identifiers, config.total_shards)]
        parts: List[Tuple[int, Optional["np.ndarray"], bytes, int]] = []
        for node_index, positions in shard_groups(node_of):
            if positions.shape[0] == count:
                # Whole batch lands on one node: forward the original
                # frame bytes untouched (flags, checksum, trace prefix).
                frame = (
                    HEADER.pack(
                        FRAME_BATCH, flags, reserved, request_id, len(payload)
                    )
                    + payload
                )
                parts.append((int(node_index), None, frame, len(payload)))
                continue
            sub = record_array[positions].tobytes()
            if trace is not None:
                sub = TRACE_CONTEXT.pack(trace[0], trace[1]) + sub
            sub_reserved = checksum16(sub) if flags & FLAG_CHECKSUM else 0
            frame = (
                HEADER.pack(FRAME_BATCH, flags, sub_reserved, request_id, len(sub))
                + sub
            )
            parts.append((int(node_index), positions, frame, len(sub)))
        # Atomic per-node admission: every target channel must have
        # budget before anything is forwarded, so a refusal really means
        # "not processed anywhere".
        channels: Dict[int, _NodeChannel] = {}
        for node_index, _positions, _frame, nbytes in parts:
            channel = self._channel(node_index)
            if channel.inflight_bytes + nbytes > config.node_inflight_bytes:
                router._refused_total.inc()
                self._respond_now(
                    encode_frame(
                        FRAME_OVERLOADED,
                        request_id,
                        f"node {router.nodes[node_index].name} inflight "
                        "budget full".encode(),
                    )
                )
                return
            channels[node_index] = channel
        router._charge(wire)
        scatter = []
        for node_index, positions, frame, nbytes in parts:
            future = channels[node_index].submit(request_id, frame, nbytes)
            scatter.append((node_index, positions, future))
            router._subframes_total.labels(node=router.nodes[node_index].name).inc()
        router._batches_total.inc()
        router._clicks_total.inc(count)
        router.total_batches += 1
        router.total_clicks += count
        task = asyncio.create_task(self._gather(request_id, count, scatter))
        router._begin_batch()
        task.add_done_callback(lambda _t: router._end_batch())
        self.responses.put_nowait((task, wire))

    async def _gather(
        self,
        request_id: int,
        count: int,
        scatter: List[Tuple[int, Optional["np.ndarray"], "asyncio.Future"]],
    ) -> bytes:
        try:
            results = []
            for node_index, positions, future in scatter:
                results.append((node_index, positions, await future))
            failures = [
                (node_index, result)
                for node_index, _positions, result in results
                if result[0] != "verdicts"
            ]
            if failures:
                hard = [entry for entry in failures if entry[1][0] == "error"]
                node_index, (kind, reason) = (hard or failures)[0]
                name = self.router.nodes[node_index].name.encode()
                if hard:
                    return encode_frame(
                        FRAME_ERROR,
                        request_id,
                        b"node " + name + b": " + bytes(reason),
                    )
                if self.client_id is not None:
                    # Exactly-once session: the same batch_seq resent is
                    # replayed from dedup by any node that applied its
                    # slice, so RETRY is the safe refusal.
                    return encode_frame(
                        FRAME_RETRY,
                        request_id,
                        b"node "
                        + name
                        + b" unavailable mid-scatter; resend this sequence",
                    )
                if kind == "overloaded":
                    return encode_frame(
                        FRAME_OVERLOADED, request_id, bytes(reason)
                    )
                return encode_frame(
                    FRAME_ERROR,
                    request_id,
                    b"node "
                    + name
                    + b" failed mid-scatter; batch dead-lettered (no HELLO "
                    b"identity to retry safely)",
                )
            if len(results) == 1 and results[0][1] is None:
                return encode_frame(
                    FRAME_VERDICTS, request_id, bytes(results[0][2][1])
                )
            merged = merge_verdict_payloads(
                count,
                [
                    (positions, result[1])
                    for _node_index, positions, result in results
                ],
            )
            return encode_frame(FRAME_VERDICTS, request_id, merged)
        except Exception as error:
            return encode_frame(
                FRAME_ERROR,
                request_id,
                f"router gather failed: {error}".encode(),
            )

    async def _sender_loop(self) -> None:
        while True:
            item = await self.responses.get()
            if item is None:
                return
            pending, release = item
            try:
                data = await pending
            except asyncio.CancelledError:
                raise
            except Exception:
                data = None
            if release:
                self.router._release(release)
            if data is None:
                continue
            try:
                self._writer.write(data)
                await self._writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                continue  # client gone; keep draining to release budget


# ----------------------------------------------------------------------
# The router itself
# ----------------------------------------------------------------------

class ClusterRouter:
    """Stateless scatter/gather front for N serve nodes.

    Construct on the event loop that will run it (it binds asyncio
    primitives), or use :class:`RouterThread` for the sync harness.
    """

    def __init__(
        self,
        nodes: Sequence[NodeSpec],
        config: Optional[ClusterConfig] = None,
        assignment: Optional["np.ndarray"] = None,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.nodes = self._validated_nodes(nodes)
        if assignment is None:
            assignment = HashRing([node.name for node in self.nodes]).assign(
                self.config.total_shards
            )
        self.assignment = self._validated_assignment(assignment, len(self.nodes))
        self.telemetry = (
            telemetry if telemetry is not None else TelemetrySession.disabled()
        )
        registry = self.telemetry.registry
        self._batches_total = registry.counter(
            "repro_cluster_batches_total", "Batches routed"
        )
        self._clicks_total = registry.counter(
            "repro_cluster_clicks_total", "Clicks routed"
        )
        self._subframes_total = registry.counter(
            "repro_cluster_subframes_total",
            "Per-node sub-frames forwarded",
            labels=("node",),
        )
        self._refused_total = registry.counter(
            "repro_cluster_refused_total",
            "Batches refused OVERLOADED (router or node budget, or paused)",
        )
        self._corrupt_total = registry.counter(
            "repro_cluster_corrupt_frames_total",
            "Batches refused RETRY on a payload checksum mismatch",
        )
        self._connects_total = registry.counter(
            "repro_cluster_node_connects_total",
            "Upstream node connections established",
            labels=("node",),
        )
        self._replays_total = registry.counter(
            "repro_cluster_journal_replays_total",
            "Journaled sub-frames replayed to a node restored behind its ack",
        )
        self._journal_overflow_total = registry.counter(
            "repro_cluster_journal_overflow_total",
            "Journal entries dropped on overflow (replay may be incomplete)",
        )
        self._inflight_gauge = registry.gauge(
            "repro_cluster_inflight_bytes",
            "Admitted-but-unanswered payload bytes at the router",
        )
        self._nodes_gauge = registry.gauge(
            "repro_cluster_nodes", "Serve nodes behind the router"
        )
        self._nodes_gauge.set(len(self.nodes))
        self.total_batches = 0
        self.total_clicks = 0
        self._generation = 0
        self._paused = False
        self._inflight_bytes = 0
        self._outstanding = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._handlers: Set[asyncio.Task] = set()
        self._sessions: Set[_Session] = set()
        self._drained = asyncio.Event()
        self._draining = False

    @staticmethod
    def _validated_nodes(nodes: Sequence[NodeSpec]) -> Tuple[NodeSpec, ...]:
        nodes = tuple(nodes)
        if not nodes:
            raise ConfigurationError("need at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        return nodes

    def _validated_assignment(
        self, assignment: "np.ndarray", num_nodes: int
    ) -> "np.ndarray":
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (self.config.total_shards,):
            raise ConfigurationError(
                f"assignment length {assignment.shape} does not match "
                f"total_shards {self.config.total_shards}"
            )
        if not (0 <= int(assignment.min()) and int(assignment.max()) < num_nodes):
            raise ConfigurationError(
                f"assignment references nodes outside [0, {num_nodes})"
            )
        return assignment

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ConfigurationError("router already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_frame_bytes,
        )

    @property
    def port(self) -> int:
        if self._server is None:
            raise ConfigurationError("router not started")
        return self._server.sockets[0].getsockname()[1]

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def drain(self) -> None:
        """Quiesce admission, flush in-flight batches, close sessions."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self._paused = True
        await self._idle.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)
        self._drained.set()

    async def quiesce(self) -> None:
        """Pause admission and wait until no batch is in flight.

        New batches are refused ``OVERLOADED`` until :meth:`resume`;
        existing connections stay open.  The cluster checkpoint barrier
        and rebalance both run inside this window.
        """
        self._paused = True
        await self._idle.wait()

    async def resume(self) -> None:
        self._paused = False

    async def reconfigure(
        self,
        nodes: Sequence[NodeSpec],
        assignment: Optional["np.ndarray"] = None,
    ) -> None:
        """Swap the node set/assignment (router must be quiesced).

        Client connections survive; their node channels are torn down
        and rebuilt lazily against the new fleet.
        """
        if not self._paused:
            raise ConfigurationError("reconfigure requires a quiesced router")
        await self._idle.wait()
        nodes = self._validated_nodes(nodes)
        if assignment is None:
            assignment = HashRing([node.name for node in nodes]).assign(
                self.config.total_shards
            )
        self.assignment = self._validated_assignment(assignment, len(nodes))
        self.nodes = nodes
        self._generation += 1
        self._nodes_gauge.set(len(nodes))
        for session in list(self._sessions):
            session._close_channels("cluster reconfigured")

    async def clear_journals(self) -> None:
        """Drop replay journals (call only at a checkpoint barrier:
        every node has durably applied everything the journals cover)."""
        for session in list(self._sessions):
            for channel in session.channels.values():
                channel.journal.clear()

    # -- bookkeeping ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _Session(self, reader, writer)
        task = asyncio.current_task()
        self._handlers.add(task)
        self._sessions.add(session)
        try:
            await session.run()
        finally:
            self._sessions.discard(session)
            self._handlers.discard(task)

    def _charge(self, nbytes: int) -> None:
        self._inflight_bytes += nbytes
        self._inflight_gauge.set(self._inflight_bytes)

    def _release(self, nbytes: int) -> None:
        self._inflight_bytes -= nbytes
        self._inflight_gauge.set(self._inflight_bytes)

    def _begin_batch(self) -> None:
        self._outstanding += 1
        self._idle.clear()

    def _end_batch(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            self._idle.set()


class RouterThread:
    """Run a :class:`ClusterRouter` on a background event loop.

    The sync harness mirror of :class:`~repro.serve.server.ServerThread`:
    cluster orchestration (quiesce/resume/reconfigure/drain) is exposed
    as thread-safe blocking calls.
    """

    def __init__(
        self,
        nodes: Sequence[NodeSpec],
        config: Optional[ClusterConfig] = None,
        assignment: Optional["np.ndarray"] = None,
        telemetry: Optional[TelemetrySession] = None,
    ) -> None:
        self._nodes = nodes
        self._config = config
        self._assignment = assignment
        self._telemetry = telemetry
        self.router: Optional[ClusterRouter] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.port: Optional[int] = None

    def start(self, timeout: float = 10.0) -> "RouterThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-router", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ConfigurationError("router thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            self.router = ClusterRouter(
                self._nodes,
                config=self._config,
                assignment=self._assignment,
                telemetry=self._telemetry,
            )
            await self.router.start()
            self.port = self.router.port
            self._loop = asyncio.get_running_loop()
        except BaseException as error:  # surface to start()
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        await self.router.wait_drained()

    def _call(self, coro, timeout: float = 30.0):
        if self._loop is None:
            raise ConfigurationError("router thread not running")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def quiesce(self, timeout: float = 30.0) -> None:
        self._call(self.router.quiesce(), timeout)

    def resume(self) -> None:
        self._call(self.router.resume())

    def reconfigure(
        self,
        nodes: Sequence[NodeSpec],
        assignment: Optional["np.ndarray"] = None,
    ) -> None:
        self._call(self.router.reconfigure(nodes, assignment))

    def clear_journals(self) -> None:
        self._call(self.router.clear_journals())

    def stop(self, timeout: float = 30.0) -> None:
        """Drain gracefully and join the loop thread."""
        if self._loop is None or self.router is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.router.drain(), self._loop)
        future.result(timeout)
        if self._thread is not None:
            self._thread.join(timeout)
        self._loop = None

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
