"""Boot and operate a self-contained local cluster: router + N nodes.

``LocalCluster`` is the cluster tier's answer to
:class:`~repro.serve.server.ServerThread`: everything runs in-process
(each node a :class:`ServerThread`, the router a
:class:`~repro.cluster.router.RouterThread`), but the topology, state
layout, and operational verbs are exactly what a multi-host deployment
would use — per-node checkpoint directories, a journaled cluster
manifest, checkpoint barriers, kill/restore failover, and rebalancing
by shipping CRC-checked shard blobs between node checkpoint stores.

State layout under ``state_dir``::

    state_dir/
      node-0/   ckpt-*.rpk + flight-*.jsonl   (node 0's store)
      node-1/   ...
      manifest/ ckpt-*.rpk                    (cluster manifests)

The drain manifest records the assignment, per-node addresses and
processed counts, cluster totals, and a merged telemetry snapshot — one
journaled record describing the whole fleet at the instant it went
quiet.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..core.checkpoint import CheckpointError, pack_frame, unpack_frame
from ..errors import ConfigurationError
from ..resilience.supervisor import CheckpointStore
from ..serve.server import _CHECKPOINT_KIND, ServeConfig, ServerThread
from ..telemetry import TelemetrySession
from .hashring import HashRing
from .partition import build_slice_blob, slice_shard_blobs, split_sharded
from .router import ClusterConfig, NodeSpec, RouterThread

__all__ = [
    "LocalCluster",
    "MANIFEST_KIND",
    "read_manifest",
    "rebalance_checkpoints",
]

MANIFEST_KIND = "cluster-manifest"


def _node_names(count: int) -> List[str]:
    return [f"node-{index}" for index in range(count)]


def read_manifest(state_dir: Union[str, Path]) -> Optional[dict]:
    """The newest readable cluster manifest under ``state_dir``, or None."""
    store = CheckpointStore(Path(state_dir) / "manifest", keep=8)
    for _path, blob in store.blobs():
        if blob is None:
            continue
        try:
            header, _payload = unpack_frame(blob)
        except CheckpointError:
            continue
        if header.get("kind") == MANIFEST_KIND:
            return header
    return None


def _collect_checkpoint_dirs(directories, keep: int = 2, expected_total=None):
    """Newest serve checkpoint of each directory → per-shard blobs plus
    merged ``(processed, watermark, dedup floors)`` and the slice kind.

    Dedup windows are merged as *floors*: per client the new floor is
    the max ``max_applied`` over the old fleet with no cached entries,
    so a late retry from before the resize is refused as already
    applied instead of re-entering any detector.
    """
    shard_blobs: Dict[int, bytes] = {}
    processed = 0
    watermark: Optional[float] = None
    floors: Dict[int, int] = {}
    kind: Optional[str] = None
    total = expected_total
    for directory in directories:
        found = False
        for _path, blob in CheckpointStore(directory, keep=keep).blobs():
            if blob is None:
                continue
            try:
                header, payload = unpack_frame(blob)
                if header.get("kind") != _CHECKPOINT_KIND:
                    continue
                blob_total, blob_kind, blobs = slice_shard_blobs(bytes(payload))
            except CheckpointError:
                continue
            if total is None:
                total = blob_total
            elif blob_total != total:
                raise CheckpointError(
                    f"{directory} checkpoint covers {blob_total} shards, "
                    f"expected {total}"
                )
            kind = blob_kind
            shard_blobs.update(blobs)
            processed += int(header.get("processed", 0))
            mark = header.get("watermark")
            if mark is not None:
                watermark = (
                    float(mark) if watermark is None
                    else max(watermark, float(mark))
                )
            dedup = header.get("dedup") or {}
            for client_id, _floor, max_applied, _entries in dedup.get(
                "clients", []
            ):
                client_id = int(client_id)
                floors[client_id] = max(
                    floors.get(client_id, 0), int(max_applied)
                )
            found = True
            break
        if not found:
            raise CheckpointError(
                f"{directory} has no readable checkpoint to rebalance from"
            )
    merged_dedup = (
        {
            "clients": [
                [client_id, floor, floor, []]
                for client_id, floor in sorted(floors.items())
            ]
        }
        if floors
        else None
    )
    merged = {
        "processed": processed,
        "watermark": watermark,
        "dedup": merged_dedup,
    }
    return shard_blobs, merged, kind, total


def _seed_node_checkpoints(
    state_dir: Path,
    new_nodes: int,
    kind: str,
    total: int,
    shard_blobs: Dict[int, bytes],
    merged: dict,
    keep: int = 2,
) -> "np.ndarray":
    """Write each new node's seeded checkpoint; returns the assignment."""
    missing = set(range(total)) - set(shard_blobs)
    if missing:
        raise CheckpointError(
            f"rebalance lost shards {sorted(missing)}: no checkpoint "
            "covers them"
        )
    assignment = HashRing(_node_names(new_nodes)).assign(total)
    for index in range(new_nodes):
        owned = {
            shard: shard_blobs[shard]
            for shard in range(total)
            if int(assignment[shard]) == index
        }
        header = {
            "kind": _CHECKPOINT_KIND,
            "processed": merged["processed"] if index == 0 else 0,
            "watermark": merged["watermark"],
            "dedup": merged["dedup"],
        }
        directory = state_dir / f"node-{index}"
        directory.mkdir(parents=True, exist_ok=True)
        CheckpointStore(directory, keep=keep).save(
            pack_frame(header, build_slice_blob(kind, total, owned))
        )
    return assignment


def rebalance_checkpoints(
    state_dir: Union[str, Path], new_nodes: int, keep: int = 2
) -> dict:
    """Offline resize of a *drained* cluster's state directory.

    Reads the newest checkpoint of every old node (the drain manifest
    names them; a ``node-*`` glob is the fallback), regroups the raw
    CRC-checked shard blobs under the new consistent-hash assignment,
    seeds ``node-0`` … ``node-{new_nodes-1}`` with their new
    checkpoints, retires directories beyond the new fleet, and writes a
    fresh manifest.  ``repro cluster run`` on the same directory then
    boots the resized fleet.
    """
    if new_nodes < 1:
        raise ConfigurationError(f"new_nodes must be >= 1, got {new_nodes}")
    state = Path(state_dir)
    manifest = read_manifest(state)
    if manifest is not None and manifest.get("nodes"):
        old_dirs = [Path(record["checkpoint_dir"]) for record in manifest["nodes"]]
    else:
        old_dirs = sorted(
            (
                entry
                for entry in state.glob("node-*")
                if entry.is_dir() and entry.name[len("node-"):].isdigit()
            ),
            key=lambda entry: int(entry.name[len("node-"):]),
        )
    if not old_dirs:
        raise CheckpointError(f"no node checkpoint directories under {state}")
    shard_blobs, merged, kind, total = _collect_checkpoint_dirs(
        old_dirs, keep=keep
    )
    assignment = _seed_node_checkpoints(
        state, new_nodes, kind, total, shard_blobs, merged, keep=keep
    )
    # Retire old directories past the new fleet so a later collection
    # can never pick up their stale shard state.
    for directory in old_dirs[new_nodes:]:
        retired = directory.with_name(directory.name + ".retired")
        suffix = 0
        while retired.exists():
            suffix += 1
            retired = directory.with_name(f"{directory.name}.retired-{suffix}")
        directory.rename(retired)
    new_manifest = {
        "kind": MANIFEST_KIND,
        "total_shards": int(total),
        "assignment": [int(node) for node in assignment],
        "totals": {"batches": 0, "clicks": merged["processed"]},
        "nodes": [
            {
                "name": f"node-{index}",
                "host": "127.0.0.1",
                "port": None,
                "checkpoint_dir": str(state / f"node-{index}"),
                "shards": [
                    int(shard) for shard in np.flatnonzero(assignment == index)
                ],
                "processed_clicks": merged["processed"] if index == 0 else 0,
            }
            for index in range(new_nodes)
        ],
        "telemetry": {},
        "rebalanced_from": len(old_dirs),
    }
    CheckpointStore(state / "manifest", keep=8).save(
        pack_frame(new_manifest, b"")
    )
    return new_manifest


class LocalCluster:
    """Router + N serve nodes, one process, full cluster semantics.

    ``detector_factory`` must return a *pristine* sharded detector
    (``ShardedDetector`` or ``TimeShardedDetector``) on every call; its
    ``num_shards`` fixes the cluster's ``total_shards``.  The factory is
    re-invoked to build fallback slices when a node boots — a node with
    a readable checkpoint restores from it instead.
    """

    def __init__(
        self,
        detector_factory: Callable[[], object],
        nodes: int,
        state_dir: Union[str, Path],
        config: Optional[ClusterConfig] = None,
        node_config: Optional[ServeConfig] = None,
        telemetry: Union[bool, TelemetrySession] = False,
        fault_hooks=None,
    ) -> None:
        if nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {nodes}")
        self.factory = detector_factory
        self.num_nodes = nodes
        self.state_dir = Path(state_dir)
        self._config = config
        #: Template for per-node ServeConfig; port/checkpoint_dir are
        #: overridden per node.
        self._node_template = (
            node_config if node_config is not None else ServeConfig()
        )
        #: ``True`` gives router and every node its own live session;
        #: a shared :class:`TelemetrySession` aggregates them — same
        #: metric names resolve to the same registry families, so
        #: fleet-wide counters come out pre-summed (the chaos soak
        #: reconciles against exactly this).
        self._telemetry = telemetry
        #: Injected into every node's engine (chaos soak).
        self._fault_hooks = fault_hooks
        self.router: Optional[RouterThread] = None
        self.servers: List[Optional[ServerThread]] = []
        self.assignment: Optional["np.ndarray"] = None
        self.total_shards: Optional[int] = None
        self._ports: Dict[int, int] = {}
        self._kind: Optional[str] = None  # slice checkpoint kind

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        """The router's client-facing port."""
        if self.router is None or self.router.port is None:
            raise ConfigurationError("cluster not started")
        return self.router.port

    def node_dir(self, index: int) -> Path:
        return self.state_dir / f"node-{index}"

    def _session(self) -> TelemetrySession:
        if isinstance(self._telemetry, TelemetrySession):
            return self._telemetry
        return (
            TelemetrySession() if self._telemetry
            else TelemetrySession.disabled()
        )

    def start(self) -> "LocalCluster":
        reference = self.factory()
        total = reference.num_shards
        if self._config is None:
            self._config = ClusterConfig(total_shards=total)
        elif self._config.total_shards != total:
            raise ConfigurationError(
                f"ClusterConfig.total_shards {self._config.total_shards} != "
                f"detector num_shards {total}"
            )
        self.total_shards = total
        names = _node_names(self.num_nodes)
        self.assignment = HashRing(names).assign(total)
        slices = split_sharded(reference, self.assignment, self.num_nodes)
        self._kind = slices[0].kind
        self.servers = [
            self._boot_node(index, slices[index])
            for index in range(self.num_nodes)
        ]
        specs = [
            NodeSpec("127.0.0.1", self._ports[index], name=names[index])
            for index in range(self.num_nodes)
        ]
        self.router = RouterThread(
            specs,
            config=self._config,
            assignment=self.assignment,
            telemetry=self._session(),
        ).start()
        return self

    def _boot_node(self, index: int, fallback_slice) -> ServerThread:
        directory = self.node_dir(index)
        directory.mkdir(parents=True, exist_ok=True)
        config = dataclasses.replace(
            self._node_template,
            port=self._ports.get(index, 0),
            checkpoint_dir=directory,
        )
        thread = ServerThread(
            fallback_slice,
            config=config,
            telemetry=self._session(),
            fault_hooks=self._fault_hooks,
        ).start()
        self._ports[index] = thread.port
        return thread

    # -- operational verbs ---------------------------------------------

    def checkpoint(self) -> None:
        """Cluster-wide checkpoint barrier.

        Quiesce the router (no batch in flight anywhere), have every
        node write a checkpoint, then clear the router's replay journals
        — everything they covered is now durable on every node — and
        resume admission.
        """
        if self.router is None:
            raise ConfigurationError("cluster not started")
        self.router.quiesce()
        try:
            for thread in self.servers:
                if thread is not None and thread._loop is not None:
                    thread.checkpoint()
            self.router.clear_journals()
        finally:
            self.router.resume()

    # -- DetectorLifecycle verbs ----------------------------------------
    #
    # The cluster speaks the same quiesce / checkpoint / migrate /
    # resume surface as a single detector (``repro.detection.api``),
    # so supervisory code drives a fleet and a sketch identically.
    # ``checkpoint`` (above) is the cluster-wide barrier; ``migrate``'s
    # resize axis is fleet width — a checkpoint-shipping rebalance.

    def quiesce(self) -> None:
        """Stop admission at the router; no batch is in flight anywhere."""
        if self.router is None:
            raise ConfigurationError("cluster not started")
        self.router.quiesce()

    def resume(self) -> None:
        """Reopen admission after :meth:`quiesce`."""
        if self.router is None:
            raise ConfigurationError("cluster not started")
        self.router.resume()

    def migrate(self, new_spec) -> None:
        """Lifecycle migrate: resize the fleet.

        ``new_spec`` is the target node count (the cluster's resize
        axis); delegates to :meth:`rebalance`, which quiesces, ships
        checkpoints to the new assignment, and resumes.
        """
        if not isinstance(new_spec, int):
            raise ConfigurationError(
                "LocalCluster.migrate resizes fleet width; pass the "
                f"target node count, got {type(new_spec).__name__}"
            )
        self.rebalance(new_spec)

    def kill_node(self, index: int) -> None:
        """SIGKILL-equivalent: the node vanishes without drain or
        checkpoint; durable state stays at its last checkpoint."""
        thread = self.servers[index]
        if thread is not None:
            thread.kill()

    def restore_node(self, index: int) -> None:
        """Boot a replacement node on the same port and state directory.

        The replacement resumes from the newest readable checkpoint in
        its store (falling back to a pristine slice when none exists);
        the router's per-channel journals roll it forward past its
        checkpoint on the first reconnect.
        """
        if self.assignment is None:
            raise ConfigurationError("cluster not started")
        fresh = split_sharded(self.factory(), self.assignment, self.num_nodes)
        self.servers[index] = self._boot_node(index, fresh[index])

    def rebalance(self, new_nodes: int) -> None:
        """Resize the fleet to ``new_nodes`` by shipping checkpoints.

        Two-phase: quiesce the router and drain every node (each writes
        a final checkpoint), then regroup the per-shard blobs under the
        new consistent-hash assignment — pure byte surgery on the
        CRC-checked frames, no filter is ever deserialized — write each
        new node's seeded checkpoint into its store, boot the new fleet,
        and point the router at it.  Dedup floors are merged across the
        old fleet so a client retry from before the resize is refused as
        already-applied rather than double-applied.

        Per-node ``processed`` counters restart at the merged cluster
        total attributed to node 0 (attribution per node is meaningless
        after shards move); cluster totals live in the drain manifest.
        """
        if self.router is None or self.assignment is None:
            raise ConfigurationError("cluster not started")
        if new_nodes < 1:
            raise ConfigurationError(f"new_nodes must be >= 1, got {new_nodes}")
        self.router.quiesce()
        for thread in self.servers:
            if thread is not None:
                thread.stop()
        keep = self._node_template.checkpoint_keep
        shard_blobs, merged, kind, _total = _collect_checkpoint_dirs(
            [self.node_dir(index) for index in range(self.num_nodes)],
            keep=keep,
            expected_total=self.total_shards,
        )
        self._kind = kind
        new_assignment = _seed_node_checkpoints(
            self.state_dir,
            new_nodes,
            kind,
            self.total_shards,
            shard_blobs,
            merged,
            keep=keep,
        )
        self.num_nodes = new_nodes
        self.assignment = new_assignment
        self._ports = {}
        fallback = split_sharded(self.factory(), new_assignment, new_nodes)
        self.servers = [
            self._boot_node(index, fallback[index]) for index in range(new_nodes)
        ]
        specs = [
            NodeSpec("127.0.0.1", self._ports[index], name=name)
            for index, name in enumerate(_node_names(new_nodes))
        ]
        self.router.reconfigure(specs, new_assignment)
        self.router.resume()

    # -- telemetry ------------------------------------------------------

    def scrape(self) -> dict:
        """One merged snapshot: router registry + every node registry."""
        router_snapshot = (
            self.router.router.telemetry.registry.snapshot()
            if self.router is not None and self.router.router is not None
            else {}
        )
        nodes = {}
        for index, thread in enumerate(self.servers):
            if thread is None or thread.server is None:
                continue
            nodes[f"node-{index}"] = {
                "port": self._ports.get(index),
                "processed_clicks": thread.server.processed_clicks,
                "metrics": thread.server.telemetry.registry.snapshot(),
            }
        return {"router": router_snapshot, "nodes": nodes}

    # -- shutdown -------------------------------------------------------

    def drain(self) -> Optional[dict]:
        """Two-phase graceful shutdown; returns the manifest header.

        Phase 1 quiesces router admission (clients see ``OVERLOADED``,
        in-flight batches finish), phase 2 drains every node (each
        writes its final checkpoint), then one journaled cluster
        manifest lands in ``state_dir/manifest``.
        """
        if self.router is None:
            return None
        self.router.quiesce()
        router_obj = self.router.router
        totals = {
            "batches": router_obj.total_batches if router_obj else 0,
            "clicks": router_obj.total_clicks if router_obj else 0,
        }
        snapshot = self.scrape()
        self.router.stop()
        self.router = None
        node_records = []
        for index, thread in enumerate(self.servers):
            if thread is None:
                continue
            processed = 0
            if thread._loop is not None:  # alive: drain writes checkpoint
                thread.stop()
            if thread.server is not None:
                processed = thread.server.processed_clicks
            node_records.append(
                {
                    "name": f"node-{index}",
                    "host": "127.0.0.1",
                    "port": self._ports.get(index),
                    "checkpoint_dir": str(self.node_dir(index)),
                    "shards": (
                        [
                            int(shard)
                            for shard in np.flatnonzero(self.assignment == index)
                        ]
                        if self.assignment is not None
                        else []
                    ),
                    "processed_clicks": processed,
                }
            )
        self.servers = []
        manifest = {
            "kind": MANIFEST_KIND,
            "total_shards": self.total_shards,
            "assignment": (
                [int(node) for node in self.assignment]
                if self.assignment is not None
                else []
            ),
            "totals": totals,
            "nodes": node_records,
            "telemetry": snapshot,
        }
        store = CheckpointStore(self.state_dir / "manifest", keep=8)
        store.save(pack_frame(manifest, b""))
        return manifest

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        try:
            self.drain()
        finally:
            for thread in self.servers:
                if thread is not None and thread._loop is not None:
                    thread.kill()
            self.servers = []
