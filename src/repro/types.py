"""Shared protocols and type aliases used across the library.

The central abstraction is :class:`DuplicateDetector`: every algorithm in
this library — the paper's GBF and TBF, and every baseline — exposes the
same one-pass interface so detectors are interchangeable in pipelines,
experiments, and benchmarks.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

#: Click identifiers are opaque hashable values.  The synthetic experiment
#: streams use integers; the advertising-network simulator uses strings
#: derived from (source IP, cookie, ad id).
Identifier = int


@runtime_checkable
class DuplicateDetector(Protocol):
    """One-pass duplicate detector over a decaying window.

    Implementations observe a stream one element at a time via
    :meth:`process` and report whether each element is a duplicate of an
    element that was *accepted as valid* earlier in the current window
    (Definition 1 in the paper).
    """

    def process(self, identifier: int) -> bool:
        """Observe the next stream element.

        Returns ``True`` when the element is classified as a duplicate
        click (and therefore is *not* recorded as a new valid click), and
        ``False`` when it is accepted as a valid click and recorded.
        """
        ...

    def query(self, identifier: int) -> bool:
        """Report whether ``identifier`` currently looks like a duplicate.

        Unlike :meth:`process` this is side-effect free: it neither
        advances the window nor records the element.
        """
        ...

    @property
    def memory_bits(self) -> int:
        """Total bits of state the detector's summary structure occupies."""
        ...


@runtime_checkable
class TimestampedDuplicateDetector(Protocol):
    """Duplicate detector over a *time-based* decaying window.

    The caller supplies an explicit, non-decreasing timestamp with each
    element instead of the detector counting arrivals.
    """

    def process_at(self, identifier: int, timestamp: float) -> bool:
        """Observe an element arriving at ``timestamp``; see ``process``."""
        ...

    @property
    def memory_bits(self) -> int:
        ...
