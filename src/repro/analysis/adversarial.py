"""Adversarial economics: what does fraud cost under duplicate detection?

The paper's future work asks about "various sophisticated click fraud
attacks" and the "economic impacts of click frauds."  Duplicate
detection changes the attacker's optimization problem in a precisely
analyzable way:

* Every identifier earns **at most one billed click per window** (zero
  false negatives), so a sustained fraudulent billing rate of ``r``
  clicks/window requires controlling at least ``r`` distinct
  identifiers per window — the *identifier treadmill*.
* Rotating identifiers (fresh IPs/cookies per click — hit inflation)
  defeats pure dedup, but each fresh identity has an acquisition cost
  (botnet rental, proxy churn), turning detection strength into an
  attack-cost lower bound.

These functions quantify that trade, and the FP side: what a detector's
false positives cost the *publisher* in wrongly rejected clicks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class AttackCostModel:
    """Economic parameters of an identifier-rotation attack.

    ``identity_cost`` is the attacker's marginal cost of one fresh
    (IP, cookie) identity; ``cpc`` the victim's cost per click.
    """

    cpc: float
    identity_cost: float

    def __post_init__(self) -> None:
        if self.cpc < 0:
            raise ConfigurationError(f"cpc must be >= 0, got {self.cpc}")
        if self.identity_cost < 0:
            raise ConfigurationError(
                f"identity_cost must be >= 0, got {self.identity_cost}"
            )


def max_billed_fraud_per_window(num_identities: int) -> int:
    """Billed fraudulent clicks per window with ``num_identities`` bots.

    With zero-FN duplicate detection each identity's repeats inside a
    window are rejected: one billed click per identity per window.
    Without detection the same identities can bill every click.
    """
    if num_identities < 0:
        raise ConfigurationError(
            f"num_identities must be >= 0, got {num_identities}"
        )
    return num_identities


def identities_needed(target_billed_per_window: int) -> int:
    """Identities required to sustain a billed-fraud rate under dedup."""
    if target_billed_per_window < 0:
        raise ConfigurationError("target must be >= 0")
    return target_billed_per_window


def attacker_roi(
    model: AttackCostModel,
    clicks_per_identity_per_window: float,
    detection_enabled: bool,
) -> float:
    """Victim damage per attacker dollar (the attacker's leverage).

    Damage is the victim's billed spend; cost is identity acquisition.
    Without detection, leverage grows linearly with the per-identity
    click rate; with detection it is capped at ``cpc / identity_cost``
    regardless of how hard each bot clicks.
    """
    if clicks_per_identity_per_window <= 0:
        raise ConfigurationError("clicks_per_identity_per_window must be > 0")
    if model.identity_cost == 0:
        return math.inf
    billed = 1.0 if detection_enabled else clicks_per_identity_per_window
    return billed * model.cpc / model.identity_cost


def detection_damage_reduction(clicks_per_identity_per_window: float) -> float:
    """Fraction of fraudulent spend removed by dedup: ``1 - 1/c``.

    ``c`` is how many times each identity clicks per window; heavier
    hammering means dedup removes more (the attacker's dilemma: clicking
    harder stops paying the moment dedup is deployed).
    """
    if clicks_per_identity_per_window < 1:
        raise ConfigurationError("clicks_per_identity_per_window must be >= 1")
    return 1.0 - 1.0 / clicks_per_identity_per_window


def publisher_fp_loss_per_window(
    fp_rate: float,
    valid_clicks_per_window: float,
    revenue_per_click: float,
) -> float:
    """Expected publisher revenue lost to false positives, per window.

    The flip side of sketching: each falsely rejected valid click
    forfeits its revenue share.  This is the quantity a publisher
    weighs against the sketch's memory savings when agreeing to the
    §1.1 audit protocol — and why the paper drives FP rates to ~1e-3.
    """
    if not 0.0 <= fp_rate <= 1.0:
        raise ConfigurationError(f"fp_rate must be in [0, 1], got {fp_rate}")
    if valid_clicks_per_window < 0 or revenue_per_click < 0:
        raise ConfigurationError("counts and prices must be >= 0")
    return fp_rate * valid_clicks_per_window * revenue_per_click


def breakeven_identity_cost(model_cpc: float) -> float:
    """Identity cost above which budget-drain attacks lose money under dedup.

    With dedup each identity drains at most one ``cpc`` per window; if a
    fresh identity costs more than the cpc, pure budget-drain is
    negative-ROI and the attacker needs a different objective.
    """
    if model_cpc < 0:
        raise ConfigurationError(f"cpc must be >= 0, got {model_cpc}")
    return model_cpc
