"""Capacity planning: turn an FP target or a memory budget into parameters.

Answers the deployment questions a network operator actually asks:
"I can spend 2 MB per ad campaign and need a 1-hour window over ~1M
clicks — which algorithm, what ``m``, what ``k``, and what FP rate do I
get?"  Used by the ``capacity_planning`` example and the detection
facade's auto-configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..bloom.params import bits_for_target_rate, optimal_num_hashes
from ..core.memory_model import gbf_cost, tbf_cost
from ..core.tbf import entry_bits_required
from ..errors import ConfigurationError
from .theory import gbf_window_fp, tbf_fp


@dataclass(frozen=True)
class GBFPlan:
    """A fully determined GBF configuration."""

    window_size: int
    num_subwindows: int
    bits_per_filter: int
    num_hashes: int
    predicted_fp: float

    @property
    def total_memory_bits(self) -> int:
        return self.bits_per_filter * (self.num_subwindows + 1)


@dataclass(frozen=True)
class TBFPlan:
    """A fully determined TBF configuration."""

    window_size: int
    num_entries: int
    num_hashes: int
    cleanup_slack: int
    entry_bits: int
    predicted_fp: float

    @property
    def total_memory_bits(self) -> int:
        return self.num_entries * self.entry_bits


def plan_gbf_from_memory(
    window_size: int,
    num_subwindows: int,
    total_memory_bits: int,
    num_hashes: Optional[int] = None,
) -> GBFPlan:
    """Best GBF configuration under a total memory budget ``M``.

    Splits ``M`` into ``Q + 1`` lanes and (unless given) picks the ``k``
    optimal for a lane's ``N/Q`` load.
    """
    bits_per_filter = total_memory_bits // (num_subwindows + 1)
    if bits_per_filter < 1:
        raise ConfigurationError(
            f"budget {total_memory_bits} bits cannot fund {num_subwindows + 1} lanes"
        )
    per_lane = window_size // num_subwindows
    k = num_hashes or optimal_num_hashes(bits_per_filter, max(per_lane, 1))
    fp = gbf_window_fp(window_size, num_subwindows, bits_per_filter, k)
    return GBFPlan(window_size, num_subwindows, bits_per_filter, k, fp)


def plan_gbf_for_target(
    window_size: int,
    num_subwindows: int,
    target_fp: float,
) -> GBFPlan:
    """Smallest GBF meeting a query-level FP target.

    The query FP is ``~Q`` lane FPs, so each lane is sized for
    ``target_fp / Q`` at load ``N/Q``, then verified against the exact
    window-level formula and grown if needed.
    """
    if not 0.0 < target_fp < 1.0:
        raise ConfigurationError(f"target_fp must be in (0, 1), got {target_fp}")
    per_lane_target = target_fp / num_subwindows
    per_lane_load = max(1, window_size // num_subwindows)
    bits_per_filter = bits_for_target_rate(per_lane_load, per_lane_target)
    while True:
        k = optimal_num_hashes(bits_per_filter, per_lane_load)
        fp = gbf_window_fp(window_size, num_subwindows, bits_per_filter, k)
        if fp <= target_fp:
            return GBFPlan(window_size, num_subwindows, bits_per_filter, k, fp)
        bits_per_filter = math.ceil(bits_per_filter * 1.05) + 1


def plan_tbf_from_memory(
    window_size: int,
    total_memory_bits: int,
    num_hashes: Optional[int] = None,
    cleanup_slack: Optional[int] = None,
) -> TBFPlan:
    """Best TBF configuration under a total memory budget ``M``."""
    if cleanup_slack is None:
        cleanup_slack = window_size - 1
    entry_bits = entry_bits_required(window_size, cleanup_slack)
    num_entries = total_memory_bits // entry_bits
    if num_entries < 1:
        raise ConfigurationError(
            f"budget {total_memory_bits} bits is below one {entry_bits}-bit entry"
        )
    k = num_hashes or optimal_num_hashes(num_entries, window_size)
    fp = tbf_fp(window_size, num_entries, k)
    return TBFPlan(window_size, num_entries, k, cleanup_slack, entry_bits, fp)


def plan_tbf_for_target(
    window_size: int,
    target_fp: float,
    cleanup_slack: Optional[int] = None,
) -> TBFPlan:
    """Smallest TBF meeting an FP target over a sliding window."""
    if not 0.0 < target_fp < 1.0:
        raise ConfigurationError(f"target_fp must be in (0, 1), got {target_fp}")
    if cleanup_slack is None:
        cleanup_slack = window_size - 1
    entry_bits = entry_bits_required(window_size, cleanup_slack)
    num_entries = bits_for_target_rate(window_size, target_fp)
    while True:
        k = optimal_num_hashes(num_entries, window_size)
        fp = tbf_fp(window_size, num_entries, k)
        if fp <= target_fp:
            return TBFPlan(
                window_size, num_entries, k, cleanup_slack, entry_bits, fp
            )
        num_entries = math.ceil(num_entries * 1.05) + 1


def recommend_jumping_window_algorithm(
    window_size: int,
    num_subwindows: int,
    total_memory_bits: int,
    num_hashes: int = 10,
    word_bits: int = 64,
) -> str:
    """Pick GBF or TBF for a jumping window, per the paper's §4.1 guidance.

    "When Q is large, GBF cannot process the click stream efficiently,
    and TBF is a better choice."  Compares predicted word operations per
    element under the shared memory budget and returns ``"gbf"`` or
    ``"tbf-jumping"``.
    """
    bits_per_filter = max(1, total_memory_bits // (num_subwindows + 1))
    gbf_ops = gbf_cost(
        window_size, num_subwindows, bits_per_filter, num_hashes, word_bits
    ).total
    entry_bits = max(
        1, math.ceil(math.log2(2 * num_subwindows + 2))
    )
    tbf_entries = max(1, total_memory_bits // entry_bits)
    subwindow_size = window_size // num_subwindows
    tbf_ops = tbf_cost(
        window_size,
        tbf_entries,
        num_hashes,
        cleanup_slack=(num_subwindows - 1) * subwindow_size + subwindow_size - 1,
    ).total
    return "gbf" if gbf_ops <= tbf_ops else "tbf-jumping"
