"""Theoretical false-positive predictions for every detector (§3.2, §4.2).

These are the curves plotted as "Theoretical Result" in the paper's
Figures 1 and 2.  All of them reduce to the classical Bloom-filter
formula with the right effective load:

* **GBF** — each lane holds at most ``N/Q`` elements of one sub-window;
  a query falsely matches a lane with the classical probability
  ``f_sub``, and falsely matches the *window* when any of the ``Q``
  active lanes matches: ``1 - (1 - f_sub)^Q``.  (The paper's Figure 2(a)
  text quotes the per-lane ``f_sub``; we expose both — see
  EXPERIMENTS.md for the comparison.)
* **TBF** — an entry is a false-positive contributor iff it was written
  by some element of the last ``N`` arrivals; entries older than that
  fail the activity check whether or not they were swept.  So the FP
  rate equals a classical filter with ``m`` slots and ``N`` elements.
* **Metwally CBF** — the main filter is queried as if all ``N`` window
  elements lived in one filter (§3.3's first critique), so it is the
  classical formula at full load ``N``.
"""

from __future__ import annotations

import math

from ..bloom.params import false_positive_rate, optimal_num_hashes
from ..core.tbf import entry_bits_required
from ..errors import ConfigurationError


def gbf_subfilter_fp(
    window_size: int, num_subwindows: int, bits_per_filter: int, num_hashes: int
) -> float:
    """FP probability of a single full GBF lane (``N/Q`` elements)."""
    per_lane = window_size // num_subwindows
    return false_positive_rate(bits_per_filter, per_lane, num_hashes)


def gbf_window_fp(
    window_size: int, num_subwindows: int, bits_per_filter: int, num_hashes: int
) -> float:
    """Query-level GBF FP rate: any of the ``Q`` active lanes matches."""
    per_lane = gbf_subfilter_fp(
        window_size, num_subwindows, bits_per_filter, num_hashes
    )
    return 1.0 - (1.0 - per_lane) ** num_subwindows


def gbf_fp_from_memory(
    window_size: int,
    num_subwindows: int,
    total_memory_bits: int,
    num_hashes: int,
) -> float:
    """GBF FP rate given a total budget ``M`` split into ``Q + 1`` lanes."""
    bits_per_filter = total_memory_bits // (num_subwindows + 1)
    if bits_per_filter < 1:
        raise ConfigurationError("memory budget too small for Q + 1 lanes")
    return gbf_window_fp(window_size, num_subwindows, bits_per_filter, num_hashes)


def tbf_fp(window_size: int, num_entries: int, num_hashes: int) -> float:
    """TBF FP rate: classical formula with ``N`` active writers.

    Exactly the elements of the last ``N`` arrivals hold active
    timestamps; each wrote ``k`` entries.  An entry is *query-active*
    iff at least one of them hit it, giving the classical fill
    fraction; stale-but-unswept entries fail the activity check and
    contribute nothing (Theorem 2's zero-FN argument in reverse).
    """
    return false_positive_rate(num_entries, window_size, num_hashes)


def tbf_fp_from_memory(
    window_size: int,
    total_memory_bits: int,
    num_hashes: int,
    cleanup_slack: int | None = None,
) -> float:
    """TBF FP rate given ``M`` total bits (entries are ``O(log N)`` bits)."""
    if cleanup_slack is None:
        cleanup_slack = window_size - 1
    entry_bits = entry_bits_required(window_size, cleanup_slack)
    num_entries = total_memory_bits // entry_bits
    if num_entries < 1:
        raise ConfigurationError("memory budget smaller than one TBF entry")
    return tbf_fp(window_size, num_entries, num_hashes)


def metwally_main_fp(
    window_size: int, num_counters: int, num_hashes: int
) -> float:
    """FP rate of the §3.3 baseline's main filter: full window load ``N``."""
    return false_positive_rate(num_counters, window_size, num_hashes)


def landmark_bloom_fp(
    window_size: int, num_bits: int, num_hashes: int
) -> float:
    """Worst-case FP of the landmark scheme: epoch fully loaded (``N``)."""
    return false_positive_rate(num_bits, window_size, num_hashes)


def gbf_optimal_hashes(
    window_size: int, num_subwindows: int, bits_per_filter: int
) -> int:
    """Optimal ``k`` for a GBF lane: sized for ``N/Q`` elements."""
    return optimal_num_hashes(bits_per_filter, window_size // num_subwindows)


def tbf_optimal_hashes(window_size: int, num_entries: int) -> int:
    """Optimal ``k`` for a TBF: sized for ``N`` active elements."""
    return optimal_num_hashes(num_entries, window_size)


def expected_false_positives(
    fp_rate: float, num_queries: int
) -> float:
    """Expected FP count over ``num_queries`` distinct-element queries."""
    if not 0.0 <= fp_rate <= 1.0:
        raise ConfigurationError(f"fp_rate must be in [0, 1], got {fp_rate}")
    if num_queries < 0:
        raise ConfigurationError(f"num_queries must be >= 0, got {num_queries}")
    return fp_rate * num_queries


def fp_confidence_interval(
    observed_fp: int, num_queries: int, z: float = 1.96
) -> tuple:
    """Normal-approximation CI for a measured FP rate (reporting helper)."""
    if num_queries <= 0:
        return (0.0, 0.0)
    rate = observed_fp / num_queries
    half_width = z * math.sqrt(max(rate * (1.0 - rate), 1e-300) / num_queries)
    return (max(0.0, rate - half_width), min(1.0, rate + half_width))
