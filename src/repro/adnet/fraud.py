"""Fraud-scenario orchestration: named attack configurations.

§1.1 lists the sources of click fraud: the publishers themselves, ad
sub-distributors, competitors, and crawlers.  Each scenario builder
here wires one of those actors into an :class:`~repro.adnet.network.AdNetwork`
with sensible parameters, so examples and tests can summon a named
threat in one line.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..streams.attacks import (
    BotnetCampaign,
    CrawlerTraffic,
    HitInflationCampaign,
    SingleAttackerCampaign,
)
from .network import AdNetwork


def _ads_of_publisher(network: AdNetwork, publisher_id: int) -> List[int]:
    ads = [
        link.ad_id
        for link in network.ad_links.values()
        if link.publisher_id == publisher_id
    ]
    if not ads:
        raise ConfigurationError(f"publisher {publisher_id} has no ad links")
    return ads


def _priciest_ads(network: AdNetwork, count: int) -> List[int]:
    links = sorted(network.ad_links.values(), key=lambda link: -link.cpc)
    if not links:
        raise ConfigurationError("network has no ad links; run_auctions() first")
    return [link.ad_id for link in links[:count]]


def competitor_botnet(
    network: AdNetwork,
    num_bots: int = 100,
    mean_interval: float = 60.0,
    target_ads: Optional[Sequence[int]] = None,
    seed: int = 11,
) -> BotnetCampaign:
    """Scenario 2: a rival drains the top bidder's budget with a botnet.

    Targets the most expensive placements (where each fraudulent click
    hurts most) unless ``target_ads`` overrides the choice.
    """
    ads = list(target_ads) if target_ads else _priciest_ads(network, 2)
    first = network.ad_links[ads[0]]
    campaign = BotnetCampaign(
        ad_ids=ads,
        publisher_id=first.publisher_id,
        advertiser_id=first.advertiser_id,
        num_bots=num_bots,
        mean_interval=mean_interval,
        seed=seed,
    )
    network.add_campaign(campaign)
    return campaign


def dishonest_publisher(
    network: AdNetwork,
    publisher_id: int,
    clicker_interval: float = 30.0,
    inflation_rate: float = 0.0,
    seed: int = 13,
) -> List[object]:
    """A publisher boosting its own revenue.

    Installs a repeat-clicker on its own placements (caught by duplicate
    detection) and, when ``inflation_rate > 0``, a hit-inflation stream
    of fabricated identities (NOT caught by duplicate detection — the
    boundary §2.4's Streaming-Rules line of work addresses).
    """
    ads = _ads_of_publisher(network, publisher_id)
    first = network.ad_links[ads[0]]
    campaigns: List[object] = [
        SingleAttackerCampaign(
            ad_id=ads[0],
            publisher_id=publisher_id,
            advertiser_id=first.advertiser_id,
            source_ip=0xDEAD0001,
            cookie=0xBEEF,
            mean_interval=clicker_interval,
            seed=seed,
        )
    ]
    if inflation_rate > 0:
        campaigns.append(
            HitInflationCampaign(
                ad_ids=ads,
                publisher_id=publisher_id,
                advertiser_id=first.advertiser_id,
                rate=inflation_rate,
                seed=seed + 1,
            )
        )
    for campaign in campaigns:
        network.add_campaign(campaign)
    return campaigns


def crawler_noise(
    network: AdNetwork,
    revisit_interval: float = 300.0,
    seed: int = 17,
) -> CrawlerTraffic:
    """A well-behaved crawler periodically refetching every ad link."""
    links = list(network.ad_links.values())
    if not links:
        raise ConfigurationError("network has no ad links; run_auctions() first")
    campaign = CrawlerTraffic(
        ad_ids=[link.ad_id for link in links],
        publisher_id=links[0].publisher_id,
        advertiser_id=links[0].advertiser_id,
        source_ip=0x42420000,
        revisit_interval=revisit_interval,
        seed=seed,
    )
    network.add_campaign(campaign)
    return campaign
