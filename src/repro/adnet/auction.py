"""Keyword auctions: how CPC prices are set (§1.1).

"Online advertisers bid on keywords of search engines or ad links of
online publishers."  We implement the standard generalized second-price
(GSP) auction per keyword: advertisers are ranked by bid; the winner of
each slot pays the bid of the advertiser ranked immediately below (plus
a minimum increment), never more than their own bid.  The auction's
output is the set of :class:`~repro.adnet.entities.AdLink` objects the
network serves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import ConfigurationError
from .entities import Advertiser, AdLink, Publisher


@dataclass(frozen=True)
class AuctionResult:
    """Outcome of one keyword's auction: ranked (advertiser, price) pairs."""

    keyword: str
    ranked: List  # list of (advertiser_id, price) in slot order

    @property
    def winner(self):
        return self.ranked[0] if self.ranked else None


def run_keyword_auction(
    keyword: str,
    advertisers: Sequence[Advertiser],
    num_slots: int = 1,
    reserve_price: float = 0.01,
    increment: float = 0.01,
) -> AuctionResult:
    """Generalized second-price auction for one keyword.

    Advertisers without a bid on ``keyword`` (or bidding below the
    reserve) do not participate.  Slot ``i``'s price is
    ``min(own_bid, next_bid + increment)``, with the last participant
    paying the reserve.
    """
    if num_slots < 1:
        raise ConfigurationError(f"num_slots must be >= 1, got {num_slots}")
    if reserve_price < 0:
        raise ConfigurationError(f"reserve_price must be >= 0, got {reserve_price}")
    participants = [
        (advertiser.bids[keyword], advertiser.advertiser_id)
        for advertiser in advertisers
        if advertiser.bids.get(keyword, 0.0) >= reserve_price
    ]
    # Deterministic tie-break on advertiser id keeps auctions reproducible.
    participants.sort(key=lambda pair: (-pair[0], pair[1]))
    ranked = []
    for slot in range(min(num_slots, len(participants))):
        own_bid, advertiser_id = participants[slot]
        if slot + 1 < len(participants):
            price = min(own_bid, participants[slot + 1][0] + increment)
        else:
            price = min(own_bid, reserve_price)
        ranked.append((advertiser_id, round(price, 4)))
    return AuctionResult(keyword=keyword, ranked=ranked)


def allocate_ad_links(
    keywords: Sequence[str],
    advertisers: Sequence[Advertiser],
    publishers: Sequence[Publisher],
    slots_per_publisher: int = 1,
    reserve_price: float = 0.01,
) -> List[AdLink]:
    """Run every keyword's auction and place winners on every publisher.

    Each publisher shows up to ``slots_per_publisher`` ads per keyword;
    ad ids are allocated densely in placement order.
    """
    links: List[AdLink] = []
    next_ad_id = 0
    for keyword in keywords:
        result = run_keyword_auction(
            keyword, advertisers, num_slots=slots_per_publisher,
            reserve_price=reserve_price,
        )
        for publisher in publishers:
            for advertiser_id, price in result.ranked:
                links.append(
                    AdLink(
                        ad_id=next_ad_id,
                        advertiser_id=advertiser_id,
                        publisher_id=publisher.publisher_id,
                        keyword=keyword,
                        cpc=price,
                    )
                )
                next_ad_id += 1
    return links


def keyword_prices(links: Sequence[AdLink]) -> Dict[str, float]:
    """Average CPC per keyword across placements (reporting helper)."""
    totals: Dict[str, List[float]] = {}
    for link in links:
        totals.setdefault(link.keyword, []).append(link.cpc)
    return {
        keyword: sum(prices) / len(prices) for keyword, prices in totals.items()
    }
