"""Advertiser/publisher click auditing.

§1.1: "A possible solution is that both the online advertisers and
publishers keep on auditing the click stream and reach an agreement on
the determination of valid clicks."  This module implements that
protocol: both parties run their own (possibly differently sized)
duplicate detectors over the same stream; the audit tallies where they
agree and quantifies the disputed amount, which is what a settlement
would negotiate over.

Because both GBF and TBF have zero false negatives, any disagreement is
attributable to false positives of one side's sketch — so shrinking
both parties' FP rates (the paper's whole contribution) directly
shrinks the disputed amount.  :func:`run_audit` measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List

from ..streams.click import Click, IdentifierScheme, DEFAULT_SCHEME


@dataclass
class AuditReport:
    """Outcome of a two-party click audit."""

    total_clicks: int = 0
    both_valid: int = 0
    both_duplicate: int = 0
    disputed: int = 0
    #: Clicks the advertiser's detector rejected but the publisher billed.
    publisher_only_valid: int = 0
    #: Clicks the publisher's detector rejected but the advertiser accepted.
    advertiser_only_valid: int = 0
    disputed_amount: float = 0.0
    agreed_amount: float = 0.0
    disputed_clicks: List[Click] = field(default_factory=list, repr=False)

    @property
    def agreement_rate(self) -> float:
        if self.total_clicks == 0:
            return 1.0
        return (self.both_valid + self.both_duplicate) / self.total_clicks

    def summary(self) -> Dict[str, float]:
        return {
            "total_clicks": self.total_clicks,
            "both_valid": self.both_valid,
            "both_duplicate": self.both_duplicate,
            "disputed": self.disputed,
            "publisher_only_valid": self.publisher_only_valid,
            "advertiser_only_valid": self.advertiser_only_valid,
            "agreement_rate": round(self.agreement_rate, 6),
            "agreed_amount": round(self.agreed_amount, 4),
            "disputed_amount": round(self.disputed_amount, 4),
        }


def run_audit(
    clicks: Iterable[Click],
    advertiser_detector,
    publisher_detector,
    scheme: IdentifierScheme = DEFAULT_SCHEME,
    price_of: Callable[[Click], float] = lambda click: click.cost,
    keep_disputed: bool = False,
) -> AuditReport:
    """Run both parties' detectors over one stream and tally agreement.

    Both detectors must expose ``process(identifier) -> bool`` and are
    fed the identical identifier sequence, in order — the "one pass over
    the click stream" both sides can perform independently.
    """
    report = AuditReport()
    for click in clicks:
        identifier = scheme.identify(click)
        advertiser_duplicate = advertiser_detector.process(identifier)
        publisher_duplicate = publisher_detector.process(identifier)
        report.total_clicks += 1
        price = price_of(click)
        if advertiser_duplicate == publisher_duplicate:
            if advertiser_duplicate:
                report.both_duplicate += 1
            else:
                report.both_valid += 1
                report.agreed_amount += price
        else:
            report.disputed += 1
            report.disputed_amount += price
            if advertiser_duplicate:
                report.publisher_only_valid += 1
            else:
                report.advertiser_only_valid += 1
            if keep_disputed:
                report.disputed_clicks.append(click)
    return report
