"""Entities of a pay-per-click advertising network (§1.1 of the paper).

The cast: **advertisers** bid on keywords and fund budgets;
**publishers** host ad links and earn per click; **ad links** bind an
advertiser's keyword bid to a publisher slot at a CPC set by the
keyword auction; **visitors** are the browsing population whose clicks
form the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ConfigurationError


@dataclass
class Advertiser:
    """An advertiser account: keyword bids plus a spending budget."""

    advertiser_id: int
    name: str
    budget: float
    #: Keyword -> maximum CPC bid.
    bids: Dict[str, float] = field(default_factory=dict)
    spent: float = 0.0

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {self.budget}")

    @property
    def remaining_budget(self) -> float:
        return max(0.0, self.budget - self.spent)

    def can_afford(self, amount: float) -> bool:
        return self.remaining_budget >= amount


@dataclass
class Publisher:
    """A site in the ad network displaying sponsored links.

    ``traffic_weight`` sets its share of legitimate traffic;
    ``revenue_share`` is the fraction of each CPC it keeps (the network
    keeps the rest).
    """

    publisher_id: int
    name: str
    traffic_weight: float = 1.0
    revenue_share: float = 0.7
    earned: float = 0.0

    def __post_init__(self) -> None:
        if self.traffic_weight < 0:
            raise ConfigurationError(
                f"traffic_weight must be >= 0, got {self.traffic_weight}"
            )
        if not 0.0 <= self.revenue_share <= 1.0:
            raise ConfigurationError(
                f"revenue_share must be in [0, 1], got {self.revenue_share}"
            )


@dataclass
class AdLink:
    """A sponsored link: one advertiser's ad in one publisher slot.

    ``cpc`` is the price per valid click, set by the keyword auction
    (second-price), never above the advertiser's bid.
    """

    ad_id: int
    advertiser_id: int
    publisher_id: int
    keyword: str
    cpc: float

    def __post_init__(self) -> None:
        if self.cpc < 0:
            raise ConfigurationError(f"cpc must be >= 0, got {self.cpc}")


@dataclass
class Visitor:
    """A legitimate browser identity: stable (IP, cookie) pair."""

    source_ip: int
    cookie: int


class Registry:
    """Id-indexed storage for one entity type with safe allocation."""

    def __init__(self) -> None:
        self._items: Dict[int, object] = {}
        self._next_id = 0

    def allocate_id(self) -> int:
        allocated = self._next_id
        self._next_id += 1
        return allocated

    def add(self, entity_id: int, entity: object) -> None:
        if entity_id in self._items:
            raise ConfigurationError(f"duplicate entity id {entity_id}")
        self._items[entity_id] = entity
        self._next_id = max(self._next_id, entity_id + 1)

    def get(self, entity_id: int) -> object:
        try:
            return self._items[entity_id]
        except KeyError:
            raise ConfigurationError(f"unknown entity id {entity_id}") from None

    def all(self) -> List[object]:
        return list(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, entity_id: int) -> bool:
        return entity_id in self._items
