"""Pay-per-click billing: charging, budgets, refunds, and the fraud ledger.

This is where duplicate detection earns its keep: every click accepted
as valid debits the advertiser and credits the publisher; every click
rejected as a duplicate is *not* billed.  The engine keeps a
per-traffic-class ledger so experiments can state, in currency, how
much fraud a detector prevented and how much legitimate revenue a
false positive cost — the economics motivating the paper (the $90M
Google and $4.95M Yahoo settlements of §1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import BudgetError, ConfigurationError
from ..streams.click import Click, TrafficClass
from .entities import Advertiser, AdLink, Publisher, Registry


@dataclass
class BillingTotals:
    """Accumulated money movement, split by ground-truth traffic class."""

    charged_clicks: int = 0
    rejected_clicks: int = 0
    charged_amount: float = 0.0
    rejected_amount: float = 0.0
    charged_by_class: Dict[str, float] = field(default_factory=dict)
    rejected_by_class: Dict[str, float] = field(default_factory=dict)

    def record_charge(self, click: Click, amount: float) -> None:
        self.charged_clicks += 1
        self.charged_amount += amount
        key = click.traffic_class.value
        self.charged_by_class[key] = self.charged_by_class.get(key, 0.0) + amount

    def record_rejection(self, click: Click, amount: float) -> None:
        self.rejected_clicks += 1
        self.rejected_amount += amount
        key = click.traffic_class.value
        self.rejected_by_class[key] = self.rejected_by_class.get(key, 0.0) + amount

    @property
    def fraud_charged(self) -> float:
        """Money billed for clicks that were actually fraudulent."""
        return sum(
            amount
            for class_name, amount in self.charged_by_class.items()
            if TrafficClass(class_name).is_fraud
        )

    @property
    def fraud_prevented(self) -> float:
        """Fraudulent spend avoided because the detector rejected it."""
        return sum(
            amount
            for class_name, amount in self.rejected_by_class.items()
            if TrafficClass(class_name).is_fraud
        )

    @property
    def legitimate_rejected(self) -> float:
        """Legitimate revenue lost to rejections (FP economics)."""
        return sum(
            amount
            for class_name, amount in self.rejected_by_class.items()
            if not TrafficClass(class_name).is_fraud
        )


class BillingEngine:
    """Settles clicks against advertiser budgets and publisher accounts."""

    def __init__(
        self,
        advertisers: Registry,
        publishers: Registry,
        ad_links: Dict[int, AdLink],
    ) -> None:
        self.advertisers = advertisers
        self.publishers = publishers
        self.ad_links = ad_links
        self.totals = BillingTotals()
        self.network_revenue = 0.0

    def _resolve(self, click: Click) -> tuple:
        try:
            link = self.ad_links[click.ad_id]
        except KeyError:
            raise ConfigurationError(f"click references unknown ad {click.ad_id}") from None
        advertiser = self.advertisers.get(link.advertiser_id)
        publisher = self.publishers.get(link.publisher_id)
        return link, advertiser, publisher

    def charge(self, click: Click) -> float:
        """Bill a valid click; returns the amount charged.

        Exhausted budgets raise :class:`~repro.errors.BudgetError` — the
        caller decides whether to pause the ad or swallow the click.
        """
        link, advertiser, publisher = self._resolve(click)
        amount = link.cpc
        if not advertiser.can_afford(amount):
            raise BudgetError(
                f"advertiser {advertiser.advertiser_id} cannot afford {amount:.2f}"
            )
        advertiser.spent += amount
        publisher_cut = amount * publisher.revenue_share
        publisher.earned += publisher_cut
        self.network_revenue += amount - publisher_cut
        self.totals.record_charge(click, amount)
        click.charged = True
        click.cost = amount
        return amount

    def reject_duplicate(self, click: Click) -> float:
        """Record a duplicate click as unbilled; returns the amount saved."""
        link, _, _ = self._resolve(click)
        self.totals.record_rejection(click, link.cpc)
        click.charged = False
        click.cost = 0.0
        return link.cpc

    def refund(self, advertiser_id: int, amount: float) -> None:
        """Credit back disputed spend (the settlement mechanism of §1.1)."""
        if amount < 0:
            raise ConfigurationError(f"refund amount must be >= 0, got {amount}")
        advertiser = self.advertisers.get(advertiser_id)
        advertiser.spent = max(0.0, advertiser.spent - amount)

    def summary(self) -> Dict[str, float]:
        """Headline economics of the run."""
        totals = self.totals
        return {
            "charged_clicks": totals.charged_clicks,
            "rejected_clicks": totals.rejected_clicks,
            "charged_amount": round(totals.charged_amount, 4),
            "rejected_amount": round(totals.rejected_amount, 4),
            "fraud_charged": round(totals.fraud_charged, 4),
            "fraud_prevented": round(totals.fraud_prevented, 4),
            "legitimate_rejected": round(totals.legitimate_rejected, 4),
            "network_revenue": round(self.network_revenue, 4),
        }
