"""The advertising-network simulator: traffic generation end to end.

Composes the substrate: advertisers bid through the keyword auction,
publishers receive placements, a visitor population browses (Zipf ad
popularity, Poisson arrivals, deliberate revisits — the paper's
Scenario 1), and fraud campaigns overlay attack traffic (Scenario 2).
``run()`` yields the merged, timestamp-ordered click stream that the
detection pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..streams.attacks import BotnetCampaign
from ..streams.click import Click, TrafficClass
from ..streams.merge import interleave_batches
from ..streams.zipf import ZipfSampler
from .auction import allocate_ad_links
from .billing import BillingEngine
from .entities import Advertiser, AdLink, Publisher, Registry, Visitor


@dataclass(frozen=True)
class TrafficProfile:
    """Shape of legitimate traffic.

    ``click_rate`` is network-wide clicks per time unit;
    ``revisit_probability`` is the chance a visitor's click repeats one
    of their own earlier clicks (Scenario 1's returning customer);
    ``revisit_mean_delay`` is the mean time before they return.
    """

    click_rate: float = 10.0
    num_visitors: int = 1000
    ad_popularity_exponent: float = 1.1
    revisit_probability: float = 0.05
    revisit_mean_delay: float = 200.0

    def __post_init__(self) -> None:
        if self.click_rate <= 0:
            raise ConfigurationError(f"click_rate must be > 0, got {self.click_rate}")
        if self.num_visitors < 1:
            raise ConfigurationError(
                f"num_visitors must be >= 1, got {self.num_visitors}"
            )
        if not 0.0 <= self.revisit_probability <= 1.0:
            raise ConfigurationError(
                "revisit_probability must be in [0, 1], "
                f"got {self.revisit_probability}"
            )


class AdNetwork:
    """A complete simulated pay-per-click network."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.advertisers = Registry()
        self.publishers = Registry()
        self.ad_links: Dict[int, AdLink] = {}
        self._campaigns: List = []
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_advertiser(
        self, name: str, budget: float, bids: Dict[str, float]
    ) -> Advertiser:
        advertiser = Advertiser(
            advertiser_id=self.advertisers.allocate_id(),
            name=name,
            budget=budget,
            bids=dict(bids),
        )
        self.advertisers.add(advertiser.advertiser_id, advertiser)
        return advertiser

    def add_publisher(
        self, name: str, traffic_weight: float = 1.0, revenue_share: float = 0.7
    ) -> Publisher:
        publisher = Publisher(
            publisher_id=self.publishers.allocate_id(),
            name=name,
            traffic_weight=traffic_weight,
            revenue_share=revenue_share,
        )
        self.publishers.add(publisher.publisher_id, publisher)
        return publisher

    def run_auctions(self, keywords: Sequence[str], slots_per_publisher: int = 1) -> None:
        """Allocate ad links for ``keywords`` across all publishers."""
        links = allocate_ad_links(
            keywords,
            [a for a in self.advertisers.all()],
            [p for p in self.publishers.all()],
            slots_per_publisher=slots_per_publisher,
        )
        self.ad_links = {link.ad_id: link for link in links}

    def add_campaign(self, campaign) -> None:
        """Attach any fraud/crawler campaign exposing ``generate(start, end)``."""
        self._campaigns.append(campaign)

    def make_billing_engine(self) -> BillingEngine:
        if not self.ad_links:
            raise ConfigurationError("run_auctions() before billing")
        return BillingEngine(self.advertisers, self.publishers, self.ad_links)

    # ------------------------------------------------------------------
    # Traffic generation
    # ------------------------------------------------------------------

    def _legitimate_traffic(
        self, start: float, end: float, profile: TrafficProfile
    ) -> List[Click]:
        if not self.ad_links:
            raise ConfigurationError("run_auctions() before generating traffic")
        rng = self._rng
        links = list(self.ad_links.values())
        publisher_weights = np.array(
            [self.publishers.get(link.publisher_id).traffic_weight for link in links],
            dtype=np.float64,
        )
        popularity = ZipfSampler(
            len(links), profile.ad_popularity_exponent, seed=self.seed + 1
        )
        visitors = [
            Visitor(source_ip=0x01000000 + i, cookie=int(rng.integers(1, 1 << 31)))
            for i in range(profile.num_visitors)
        ]

        clicks: List[Click] = []
        now = start
        expected = max(1, int((end - start) * profile.click_rate))
        gaps = rng.exponential(1.0 / profile.click_rate, size=expected * 2)
        gap_index = 0
        while now < end:
            if gap_index >= len(gaps):
                gaps = rng.exponential(1.0 / profile.click_rate, size=expected)
                gap_index = 0
            now += float(gaps[gap_index])
            gap_index += 1
            if now >= end:
                break
            visitor = visitors[int(rng.integers(len(visitors)))]
            rank = popularity.sample_one()
            # Weight popularity by publisher traffic share.
            if publisher_weights[rank] <= 0:
                continue
            link = links[rank]
            click = Click(
                timestamp=now,
                source_ip=visitor.source_ip,
                cookie=visitor.cookie,
                ad_id=link.ad_id,
                publisher_id=link.publisher_id,
                advertiser_id=link.advertiser_id,
                traffic_class=TrafficClass.LEGITIMATE,
            )
            clicks.append(click)
            # Scenario 1: the interested customer who comes back later.
            if rng.random() < profile.revisit_probability:
                delay = float(rng.exponential(profile.revisit_mean_delay))
                if now + delay < end:
                    clicks.append(
                        Click(
                            timestamp=now + delay,
                            source_ip=visitor.source_ip,
                            cookie=visitor.cookie,
                            ad_id=link.ad_id,
                            publisher_id=link.publisher_id,
                            advertiser_id=link.advertiser_id,
                            traffic_class=TrafficClass.REPEAT_VISITOR,
                        )
                    )
        clicks.sort(key=lambda c: c.timestamp)
        return clicks

    def run(
        self,
        duration: float,
        profile: Optional[TrafficProfile] = None,
        start: float = 0.0,
    ) -> List[Click]:
        """Generate the full click stream for ``[start, start + duration)``."""
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        profile = profile or TrafficProfile()
        end = start + duration
        batches = [self._legitimate_traffic(start, end, profile)]
        for campaign in self._campaigns:
            batches.append(campaign.generate(start, end))
        return interleave_batches(batches)


def demo_network(seed: int = 0) -> AdNetwork:
    """A small ready-made network used by examples and tests.

    Three advertisers bidding on four keywords, two publishers, and a
    botnet campaign targeting the most expensive keyword's placements.
    """
    network = AdNetwork(seed=seed)
    network.add_advertiser(
        "BlueWidgets", budget=5_000.0, bids={"widgets": 1.20, "gadgets": 0.40}
    )
    network.add_advertiser(
        "GadgetKing", budget=3_000.0, bids={"gadgets": 0.90, "widgets": 0.75}
    )
    network.add_advertiser(
        "CheapDeals", budget=1_000.0, bids={"deals": 0.30, "widgets": 0.25}
    )
    network.add_publisher("search-site", traffic_weight=2.0)
    network.add_publisher("blog-network", traffic_weight=1.0)
    network.run_auctions(["widgets", "gadgets", "deals"])
    target_ads = [
        link.ad_id for link in network.ad_links.values() if link.keyword == "widgets"
    ]
    network.add_campaign(
        BotnetCampaign(
            ad_ids=target_ads[:2],
            publisher_id=1,
            advertiser_id=0,
            num_bots=25,
            mean_interval=120.0,
            seed=seed + 7,
        )
    )
    return network
