"""Advertising-network dynamics: bids, budgets, and pacing over time.

The paper's future work names "advertising network dynamics [and] new
service models".  This module adds the time dimension to the static
auction of :mod:`repro.adnet.auction`:

* **Budget pacing** — spreading an advertiser's daily budget across the
  day instead of exhausting it in the first traffic burst (which is
  precisely what a morning botnet otherwise forces).
* **Bid adjustment** — advertisers reacting to observed performance by
  raising/lowering keyword bids between auction rounds.
* **Auction rounds** — periodically re-running the keyword auctions so
  prices track the moving bids, as real networks do.

Together these let experiments ask economics questions: how fast does a
budget-drain attack bite under pacing?  Does smart pricing (see
:mod:`repro.detection.quality`) stabilize prices under fraud?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import BudgetError, ConfigurationError
from .entities import Advertiser


@dataclass(frozen=True)
class PacingConfig:
    """Budget-pacing policy.

    ``horizon`` is the planning period (e.g. 86 400 s for daily
    budgets); spending is throttled so that by elapsed fraction ``f``
    of the horizon at most ``f * budget * (1 + tolerance)`` is spent.
    """

    horizon: float = 86_400.0
    tolerance: float = 0.10

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {self.horizon}")
        if self.tolerance < 0:
            raise ConfigurationError(
                f"tolerance must be >= 0, got {self.tolerance}"
            )


class BudgetPacer:
    """Throttles an advertiser's spend to a linear schedule.

    ``allow(advertiser, amount, now)`` answers whether charging
    ``amount`` at time ``now`` keeps the advertiser on schedule; the
    billing loop skips (does not bill) clicks that would overshoot —
    they are simply not served in a real network.
    """

    def __init__(self, config: PacingConfig | None = None, start: float = 0.0) -> None:
        self.config = config or PacingConfig()
        self.start = start
        self.throttled: Dict[int, int] = {}

    def allow(self, advertiser: Advertiser, amount: float, now: float) -> bool:
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount}")
        elapsed = max(0.0, now - self.start)
        fraction = min(1.0, elapsed / self.config.horizon)
        ceiling = advertiser.budget * fraction * (1.0 + self.config.tolerance)
        if advertiser.spent + amount <= ceiling or fraction >= 1.0:
            return advertiser.can_afford(amount)
        self.throttled[advertiser.advertiser_id] = (
            self.throttled.get(advertiser.advertiser_id, 0) + 1
        )
        return False


@dataclass
class BidPolicy:
    """How an advertiser moves a keyword bid between rounds.

    A simple proportional controller on the observed valid-click share:
    if fewer than ``target_share`` of the keyword's valid clicks went
    to this advertiser, raise the bid by ``step``; if more, lower it —
    bounded by ``[min_bid, max_bid]``.
    """

    target_share: float = 0.5
    step: float = 0.05
    min_bid: float = 0.01
    max_bid: float = 10.0

    def adjust(self, current_bid: float, observed_share: float) -> float:
        if observed_share < self.target_share:
            adjusted = current_bid * (1.0 + self.step)
        else:
            adjusted = current_bid * (1.0 - self.step)
        return round(min(self.max_bid, max(self.min_bid, adjusted)), 4)


@dataclass
class RoundOutcome:
    """Observable result of one auction round, fed back into policies."""

    round_index: int
    keyword_prices: Dict[str, float] = field(default_factory=dict)
    valid_clicks: Dict[int, int] = field(default_factory=dict)  # advertiser -> count


class DynamicAuctioneer:
    """Re-runs keyword auctions and applies bid policies between rounds."""

    def __init__(self, network, policies: Dict[int, BidPolicy] | None = None) -> None:
        self.network = network
        self.policies = policies or {}
        self.history: List[RoundOutcome] = []

    def record_round(self, valid_clicks: Dict[int, int]) -> RoundOutcome:
        """Close a round: adjust bids from observed shares, re-auction."""
        from .auction import keyword_prices

        total = sum(valid_clicks.values())
        advertisers = {
            a.advertiser_id: a for a in self.network.advertisers.all()
        }
        for advertiser_id, policy in self.policies.items():
            advertiser = advertisers.get(advertiser_id)
            if advertiser is None:
                raise ConfigurationError(
                    f"policy references unknown advertiser {advertiser_id}"
                )
            share = (
                valid_clicks.get(advertiser_id, 0) / total if total else 0.0
            )
            advertiser.bids = {
                keyword: policy.adjust(bid, share)
                for keyword, bid in advertiser.bids.items()
            }
        keywords = sorted({link.keyword for link in self.network.ad_links.values()})
        self.network.run_auctions(keywords)
        outcome = RoundOutcome(
            round_index=len(self.history),
            keyword_prices=keyword_prices(list(self.network.ad_links.values())),
            valid_clicks=dict(valid_clicks),
        )
        self.history.append(outcome)
        return outcome


def paced_charge(billing, pacer: BudgetPacer, click) -> float:
    """Charge a click subject to pacing; returns the amount (0 if throttled).

    Raises :class:`~repro.errors.BudgetError` only when the budget is
    truly exhausted (not merely paced).
    """
    link = billing.ad_links[click.ad_id]
    advertiser = billing.advertisers.get(link.advertiser_id)
    if not pacer.allow(advertiser, link.cpc, click.timestamp):
        if not advertiser.can_afford(link.cpc):
            raise BudgetError(
                f"advertiser {advertiser.advertiser_id} exhausted"
            )
        click.charged = False
        return 0.0
    return billing.charge(click)
