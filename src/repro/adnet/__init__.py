"""Pay-per-click advertising-network substrate."""

from .auction import AuctionResult, allocate_ad_links, keyword_prices, run_keyword_auction
from .audit import AuditReport, run_audit
from .billing import BillingEngine, BillingTotals
from .dynamics import (
    BidPolicy,
    BudgetPacer,
    DynamicAuctioneer,
    PacingConfig,
    RoundOutcome,
    paced_charge,
)
from .entities import Advertiser, AdLink, Publisher, Registry, Visitor
from .fraud import competitor_botnet, crawler_noise, dishonest_publisher
from .network import AdNetwork, TrafficProfile, demo_network

__all__ = [
    "BudgetPacer",
    "PacingConfig",
    "BidPolicy",
    "DynamicAuctioneer",
    "RoundOutcome",
    "paced_charge",
    "Advertiser",
    "Publisher",
    "AdLink",
    "Visitor",
    "Registry",
    "run_keyword_auction",
    "allocate_ad_links",
    "keyword_prices",
    "AuctionResult",
    "BillingEngine",
    "BillingTotals",
    "AdNetwork",
    "TrafficProfile",
    "demo_network",
    "competitor_botnet",
    "dishonest_publisher",
    "crawler_noise",
    "run_audit",
    "AuditReport",
]
