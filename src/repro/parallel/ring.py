"""Shared-memory batch rings: the hot-path transport between router and workers.

A :class:`BatchRing` is a single-producer / single-consumer ring of
fixed-size slots living in one :class:`multiprocessing.shared_memory`
segment.  The router writes pre-hashed click batches into request-ring
slots; a worker reads them in place (``np.frombuffer`` over the slot —
no pickling, no copies on the way in) and writes verdict batches into a
response ring flowing the other way.  Slot hand-off uses one pair of
semaphores per ring — the classic bounded-buffer discipline — so both
sides *block* instead of spinning, which matters when workers outnumber
cores.

Each slot carries a small header (op code, element count, hash count,
payload length) followed by a raw payload area.  The ring itself is
payload-agnostic: op codes are defined by :mod:`repro.parallel.worker`.

Why a ring and not a :class:`multiprocessing.Queue`: a queue pickles
every batch and copies it through a pipe — per-batch cost grows with
batch size.  The ring's per-batch cost is one memcpy into shared memory
plus two semaphore operations, independent of pickling, and the slot
count bounds memory regardless of stream length.

Ordering doubles as a quiescence barrier: because control commands
(checkpoint, telemetry) travel through the *same* request ring as click
batches, a worker reaching a checkpoint command has necessarily finished
every batch sent before it.  The engine's two-phase checkpoint leans on
this (see :meth:`repro.parallel.engine.ParallelShardedDetector.checkpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory
from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["BatchRing", "RingSpec"]

#: Per-slot header: ``[op, count, num_hashes, payload_bytes, trace_id,
#: span_id]`` as uint64.  The two trace words carry the sampled request
#: trace context across the process boundary (zero = untraced); they ride
#: the header rather than the payload so the payload stays exactly the
#: batch bytes the worker reads in place.
_HEADER_WORDS = 6
_HEADER_BYTES = _HEADER_WORDS * 8


@dataclass
class RingSpec:
    """Everything a child process needs to attach to an existing ring.

    The shared-memory segment travels by *name*; the semaphores travel by
    inheritance (they are picklable only as :class:`multiprocessing.Process`
    arguments, which is exactly how specs are shipped).
    """

    name: str
    slots: int
    slot_bytes: int
    space: object  # multiprocessing semaphore: free slots remaining
    items: object  # multiprocessing semaphore: filled slots pending


class BatchRing:
    """SPSC ring over one shared-memory segment.

    Exactly one producer calls :meth:`push`; exactly one consumer calls
    :meth:`pop` / :meth:`release_slot`.  Both sides keep private slot
    cursors, so no shared head/tail indices are needed — the semaphores
    carry both the counting and the memory-ordering.
    """

    def __init__(self, spec: RingSpec, shm: SharedMemory, owner: bool) -> None:
        self.spec = spec
        self.slots = spec.slots
        self.slot_bytes = spec.slot_bytes
        self._space = spec.space
        self._items = spec.items
        self._shm = shm
        self._owner = owner
        self._closed = False
        buffer = shm.buf
        header_region = spec.slots * _HEADER_BYTES
        self._headers = np.frombuffer(
            buffer, dtype=np.uint64, count=spec.slots * _HEADER_WORDS
        ).reshape(spec.slots, _HEADER_WORDS)
        self._payload = buffer[header_region : header_region + spec.slots * spec.slot_bytes]
        self._push_cursor = 0
        self._pop_cursor = 0
        self._held_slot: Optional[int] = None
        #: Trace context of the most recently popped slot, ``(trace_id,
        #: span_id)``; ``(0, 0)`` when that batch was untraced.  Exposed
        #: as a side channel so :meth:`pop`'s 4-tuple shape (which op
        #: dispatch and tests rely on) is unchanged.
        self.last_trace: Tuple[int, int] = (0, 0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, ctx, slots: int, slot_bytes: int) -> "BatchRing":
        """Allocate a fresh ring (parent side) under start context ``ctx``."""
        if slots < 1:
            raise ConfigurationError(f"ring slots must be >= 1, got {slots}")
        if slot_bytes < 8:
            raise ConfigurationError(f"slot_bytes must be >= 8, got {slot_bytes}")
        size = slots * (_HEADER_BYTES + slot_bytes)
        shm = SharedMemory(create=True, size=size)
        spec = RingSpec(
            name=shm.name,
            slots=slots,
            slot_bytes=slot_bytes,
            space=ctx.Semaphore(slots),
            items=ctx.Semaphore(0),
        )
        return cls(spec, shm, owner=True)

    @classmethod
    def attach(cls, spec: RingSpec) -> "BatchRing":
        """Attach to an existing ring (worker side)."""
        return cls(spec, SharedMemory(name=spec.name), owner=False)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def push(
        self,
        op: int,
        parts: Iterable[bytes] = (),
        count: int = 0,
        num_hashes: int = 0,
        timeout: Optional[float] = None,
        trace_id: int = 0,
        span_id: int = 0,
    ) -> bool:
        """Write one slot; returns False if no slot freed up in ``timeout``.

        ``parts`` are concatenated into the slot's payload area; their
        total size must fit ``slot_bytes`` (enforced — a silent overrun
        would corrupt the neighbouring slot).  ``trace_id``/``span_id``
        stamp the slot's trace-context header words (zero = untraced).
        """
        if not self._space.acquire(timeout=timeout):
            return False
        slot = self._push_cursor % self.slots
        base = slot * self.slot_bytes
        offset = 0
        for part in parts:
            view = memoryview(part).cast("B")
            end = offset + view.nbytes
            if end > self.slot_bytes:
                self._space.release()
                raise ConfigurationError(
                    f"batch payload ({end} bytes) exceeds ring slot "
                    f"({self.slot_bytes} bytes)"
                )
            self._payload[base + offset : base + end] = view
            offset = end
        self._headers[slot, 0] = op
        self._headers[slot, 1] = count
        self._headers[slot, 2] = num_hashes
        self._headers[slot, 3] = offset
        self._headers[slot, 4] = trace_id
        self._headers[slot, 5] = span_id
        self._push_cursor += 1
        self._items.release()
        return True

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def pop(self, timeout: Optional[float] = None) -> Optional[Tuple[int, int, int, memoryview]]:
        """Take the next slot; ``(op, count, num_hashes, payload_view)``.

        The returned payload is a zero-copy view into shared memory —
        valid until :meth:`release_slot`, which the consumer must call
        once it has finished reading (that is what frees the slot for
        the producer).  Returns ``None`` on timeout.  The slot's trace
        context lands in :attr:`last_trace` as a side effect.
        """
        if self._held_slot is not None:
            raise RuntimeError("previous slot not released")
        if not self._items.acquire(timeout=timeout):
            return None
        slot = self._pop_cursor % self.slots
        self._pop_cursor += 1
        self._held_slot = slot
        op, count, num_hashes, payload_bytes, trace_id, span_id = (
            int(v) for v in self._headers[slot]
        )
        self.last_trace = (trace_id, span_id)
        base = slot * self.slot_bytes
        return op, count, num_hashes, self._payload[base : base + payload_bytes]

    def release_slot(self) -> None:
        """Hand the last popped slot back to the producer."""
        if self._held_slot is None:
            raise RuntimeError("no slot held")
        self._held_slot = None
        self._space.release()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Detach (both sides); the creating side also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        # Views pin the exported buffer; drop them before closing.
        self._headers = None
        self._payload = None
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform quirks
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
