"""Multi-core parallel detection engine: process-backed shards.

The single-process sharded detectors in :mod:`repro.detection.sharded`
prove the semantics — identifier-partitioned dedup needs no cross-shard
communication on the hot path — but they still execute every shard's
probe/set work on one core.  This module keeps the exact same
partitioning and moves each shard into its own worker process:

* The **router** (parent) stays the only place that sees the stream.
  It routes a batch with one vectorized :func:`~repro.detection.sharded.route_batch`
  call, evaluates each shard's hash family once
  (:func:`~repro.hashing.vectorized.precompute_indices`), and writes the
  pre-hashed sub-batches into per-worker shared-memory rings
  (:class:`~repro.parallel.ring.BatchRing`).  Workers only probe/set.
* **Verdicts** come back through response rings and are scattered into
  the output array at the positions the stable shard-group sort
  recorded, so the caller sees exact stream-order verdicts.
* **Semantics are bit-identical** to the single-process detectors:
  verdicts, per-shard checkpoint blobs, and summed
  :class:`~repro.bitset.words.OperationCounter` totals all match a
  :class:`~repro.detection.sharded.ShardedDetector` run (property-tested
  in ``tests/test_parallel_engine.py``).

Supervision: every completed sub-batch is journaled in the router until
the next per-worker checkpoint.  When a worker dies uncleanly (SIGKILL,
OOM), the engine respawns it from its last checkpoint blob and replays
the journal — deterministic one-pass detectors make the replay exact,
so an interrupted run finishes with the same state and duplicate counts
as an uninterrupted one.  When respawn is disabled or exhausted, the
shard degrades under the same fail-open / fail-closed policies as the
in-process detectors.  Deterministic *data* errors raised inside a
worker (e.g. a regressing timestamp) propagate as
:class:`~repro.errors.ParallelError` instead of triggering respawn —
replaying them would fail identically.

Checkpointing is two-phase and rides the rings' FIFO ordering: phase 1
pushes a checkpoint command down every healthy worker's request ring
(everything sent earlier is necessarily applied by the time the worker
answers — the ring is the quiescence barrier) and gathers the per-shard
blobs; phase 2 commits one manifest frame holding the blobs plus the
router's own state (arrival counts, degraded map, engine options).  The
manifest registers as checkpoint kinds ``parallel-sharded`` /
``parallel-time-sharded``, so :class:`~repro.resilience.SupervisedPipeline`
journals a parallel deployment exactly like a single detector — and a
restore *respawns the fleet* from the manifest.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..core.checkpoint import (
    load_detector,
    pack_frame,
    register_checkpoint_kind,
    save_detector,
)
from ..errors import CheckpointError, ConfigurationError, ParallelError
from ..detection.sharded import (
    FailoverPolicy,
    ShardedDetector,
    TimeShardedDetector,
    _split_shard_blobs,
    route_batch,
    shard_groups,
)
from ..hashing.vectorized import precompute_indices
from ..telemetry.requesttrace import current_trace
from .ring import BatchRing
from .worker import (
    _op_counts as _shard_counts,
    OP_CHECKPOINT,
    OP_IDS,
    OP_IDS_TS,
    OP_INDICES,
    OP_OPCOUNTS,
    OP_STOP,
    OP_TELEMETRY,
    OP_VERDICTS,
    WorkerSpec,
    shard_worker_main,
)

__all__ = [
    "ParallelShardedDetector",
    "ParallelTimeShardedDetector",
    "lift_sharded",
]


class _WorkerDied(Exception):
    """Internal: a worker went away uncleanly (no error report)."""


class _WorkerState:
    """Parent-side handle for one shard's worker process."""

    __slots__ = (
        "index",
        "process",
        "conn",
        "request",
        "response",
        "outstanding",
        "collected",
        "pieces_expected",
        "txn",
        "last_checkpoint",
        "last_counts",
        "journal",
        "items_since_checkpoint",
        "respawns",
    )

    def __init__(self, index: int, blob: bytes, counts: Optional[dict]) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.request: Optional[BatchRing] = None
        self.response: Optional[BatchRing] = None
        self.outstanding = 0
        self.collected: List[np.ndarray] = []
        self.pieces_expected = 0
        self.txn = None  # (ids, timestamps) of the in-flight sub-batch
        self.last_checkpoint = blob
        # Counter snapshot paired with last_checkpoint: blobs omit the
        # OperationCounter, so respawned workers are seeded from this to
        # keep summed totals identical to an uninterrupted run.
        self.last_counts = counts
        self.journal: List[tuple] = []
        self.items_since_checkpoint = 0
        self.respawns = 0


class _ParallelEngine:
    """Shared machinery for both parallel engines (count- and time-based).

    Parameters
    ----------
    base:
        The single-process sharded detector whose shards this engine
        runs in worker processes.  Its current state seeds the workers
        (via checkpoint blobs, so the hand-off is bit-exact); with
        ``close(sync=True)`` the final worker states are written back
        into it.  Only the default router is supported — the router must
        be replayable in the parent and round-trip through checkpoints.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        ``"spawn"`` is the strictest and the macOS default).
    slots / slot_items:
        Ring geometry: ``slots`` in-flight sub-batches per worker, each
        of at most ``slot_items`` clicks.  Larger sub-batches are split.
    respawn / max_respawns:
        Whether (and how many times per worker) an uncleanly dead worker
        is respawned from its last checkpoint with journal replay.
    death_policy:
        Failover policy a shard degrades to once respawn is exhausted
        or disabled (same semantics as ``ShardedDetector.fail_shard``).
    checkpoint_every_items:
        Pull a per-worker checkpoint after this many clicks on a shard,
        bounding the replay journal (0 = only explicit checkpoints).
    worker_timeout:
        Seconds a ring or control transfer may stall before the engine
        declares the worker wedged (the deadlock guard).
    trace_dir:
        When set, workers append span shards here for sampled-traced
        batches (the trace context rides the ring slot headers — see
        :mod:`repro.telemetry.requesttrace`).  Runtime-only: it is
        deliberately *not* serialized into checkpoints, so a restored
        fleet traces only if its restorer asks for it.
    """

    _time_based = False
    _checkpoint_kind = "parallel-sharded"

    def __init__(
        self,
        base,
        *,
        start_method: Optional[str] = None,
        slots: int = 4,
        slot_items: int = 8192,
        respawn: bool = True,
        max_respawns: int = 3,
        death_policy: Union[FailoverPolicy, str] = FailoverPolicy.FAIL_CLOSED,
        checkpoint_every_items: int = 1 << 16,
        worker_timeout: float = 60.0,
        trace_dir: Optional[str] = None,
    ) -> None:
        expected = TimeShardedDetector if self._time_based else ShardedDetector
        if type(base) is not expected:
            raise ConfigurationError(
                f"{type(self).__name__} wraps a {expected.__name__}, "
                f"got {type(base).__name__}"
            )
        if not base._router_is_default:
            raise ConfigurationError(
                "the parallel engine requires the default router (custom "
                "routers cannot be replayed for respawn or checkpointing)"
            )
        if slots < 2:
            raise ConfigurationError(f"slots must be >= 2, got {slots}")
        if slot_items < 1:
            raise ConfigurationError(f"slot_items must be >= 1, got {slot_items}")
        if max_respawns < 0:
            raise ConfigurationError(f"max_respawns must be >= 0, got {max_respawns}")
        if checkpoint_every_items < 0:
            raise ConfigurationError(
                f"checkpoint_every_items must be >= 0, got {checkpoint_every_items}"
            )
        self.base = base
        self.start_method = start_method
        self.slots = slots
        self.slot_items = slot_items
        self.respawn = respawn
        self.max_respawns = max_respawns
        self.death_policy = FailoverPolicy(death_policy)
        self.checkpoint_every_items = checkpoint_every_items
        self.worker_timeout = worker_timeout
        self.trace_dir = trace_dir
        self._poll = 0.05
        self._ctx = multiprocessing.get_context(start_method)
        self._closed = False

        # Transport plan per shard: pre-hashed indices whenever the
        # shard exposes the index kernel (the router then hashes once
        # and workers only probe/set); identifiers+timestamps for
        # time-based shards; raw identifiers otherwise.
        self._families = []
        self._ops = []
        self._bytes_per_item = []
        for shard in base.shards:
            family = getattr(shard, "family", None)
            if self._time_based:
                op, width = OP_IDS_TS, 16
            elif family is not None and hasattr(shard, "process_indices_batch"):
                op, width = OP_INDICES, 8 * family.num_hashes
            else:
                op, width = OP_IDS, 8
            self._families.append(family)
            self._ops.append(op)
            self._bytes_per_item.append(width)

        # Failover bookkeeping mirrors _ShardFailover, lifted from base.
        self._degraded: Dict[int, Dict[str, object]] = {
            shard: {"policy": entry["policy"], "clicks": int(entry["clicks"])}
            for shard, entry in base._degraded.items()
        }
        self._per_shard_arrivals = (
            list(base._per_shard_arrivals) if not self._time_based else None
        )
        self.worker_deaths = 0
        self.worker_respawns = 0
        self._death_counter = None
        self._respawn_counter = None
        self._failover_counter = None

        self._workers: List[_WorkerState] = []
        try:
            for index, shard in enumerate(base.shards):
                state = _WorkerState(index, save_detector(shard), _shard_counts(shard))
                self._workers.append(state)
                self._spawn(state)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, state: _WorkerState) -> None:
        request = BatchRing.create(
            self._ctx, self.slots, self.slot_items * self._bytes_per_item[state.index]
        )
        response = BatchRing.create(self._ctx, self.slots, max(8, self.slot_items))
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(
                WorkerSpec(
                    state.index,
                    request.spec,
                    response.spec,
                    child_conn,
                    trace_dir=self.trace_dir,
                ),
            ),
            name=f"repro-shard-{state.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        parent_conn.send((state.last_checkpoint, state.last_counts))
        state.process = process
        state.conn = parent_conn
        state.request = request
        state.response = response
        state.outstanding = 0
        state.collected = []
        state.pieces_expected = 0

    def _teardown(self, state: _WorkerState) -> None:
        if state.process is not None and state.process.is_alive():
            state.process.terminate()
            state.process.join(timeout=5.0)
            if state.process.is_alive():  # pragma: no cover - last resort
                state.process.kill()
                state.process.join(timeout=5.0)
        for attribute in ("conn",):
            conn = getattr(state, attribute)
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                setattr(state, attribute, None)
        for attribute in ("request", "response"):
            ring = getattr(state, attribute)
            if ring is not None:
                ring.close()
                setattr(state, attribute, None)
        if state.process is not None:
            state.process = None

    def _record_death(self, state: _WorkerState) -> None:
        self.worker_deaths += 1
        if self._death_counter is not None:
            self._death_counter.inc()

    def _ensure_worker(self, state: _WorkerState) -> bool:
        """Respawn ``state``'s worker from its last checkpoint and replay
        the journal; False when respawn is disabled or exhausted (the
        caller then degrades the shard)."""
        while True:
            self._record_death(state)
            if not self.respawn or state.respawns >= self.max_respawns:
                return False
            state.respawns += 1
            self.worker_respawns += 1
            if self._respawn_counter is not None:
                self._respawn_counter.inc()
            self._teardown(state)
            self._spawn(state)
            try:
                for ids, timestamps in state.journal:
                    self._run_sync(state, ids, timestamps)
                return True
            except _WorkerDied:
                continue

    def _degrade(self, shard: int) -> None:
        self._degraded[shard] = {"policy": self.death_policy, "clicks": 0}
        if self._failover_counter is not None:
            self._failover_counter.labels(policy=self.death_policy.value).inc()

    def fail_worker(
        self, shard: int, policy: Union[FailoverPolicy, str, None] = None
    ) -> None:
        """Explicitly degrade a shard (stops routing clicks to its worker)."""
        self._check_shard(shard)
        policy = FailoverPolicy(policy) if policy is not None else self.death_policy
        self._degraded[shard] = {"policy": policy, "clicks": 0}
        if self._failover_counter is not None:
            self._failover_counter.labels(policy=policy.value).inc()

    def restore_worker(self, shard: int, blob: Optional[bytes] = None) -> int:
        """End a shard's degraded window, respawning its worker.

        Restores from ``blob`` when given, else from the worker's last
        checkpoint.  Returns the clicks answered by policy while
        degraded (mirrors ``ShardedDetector.restore_shard``).
        """
        self._check_shard(shard)
        state = self._workers[shard]
        if blob is not None:
            state.last_checkpoint = blob
            # An external blob carries no counter snapshot — the rebuilt
            # worker starts fresh, matching ShardedDetector.restore_shard.
            state.last_counts = None
            state.journal = []
            state.items_since_checkpoint = 0
        self._teardown(state)
        self._spawn(state)
        try:
            for ids, timestamps in state.journal:
                self._run_sync(state, ids, timestamps)
        except _WorkerDied as error:
            raise ParallelError(
                f"worker {shard} died again during restore replay"
            ) from error
        entry = self._degraded.pop(shard, None)
        return int(entry["clicks"]) if entry is not None else 0

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < len(self._workers):
            raise ConfigurationError(
                f"shard index {shard} out of range [0, {len(self._workers)})"
            )

    # ------------------------------------------------------------------
    # Ring + pipe transfer primitives (all with the deadlock guard)
    # ------------------------------------------------------------------

    def _check_alive(self, state: _WorkerState) -> None:
        conn = state.conn
        if conn is not None and conn.poll(0):
            try:
                tag, value = conn.recv()
            except (EOFError, OSError) as error:
                raise _WorkerDied from error
            if tag == "error":
                raise ParallelError(f"worker {state.index} failed:\n{value}")
            raise ParallelError(
                f"worker {state.index} sent unexpected {tag!r} message"
            )
        if state.process is None or not state.process.is_alive():
            raise _WorkerDied

    def _push(
        self, state: _WorkerState, op: int, parts=(), count: int = 0, k: int = 0
    ) -> None:
        # The installed trace context (set by the serve engine around a
        # sampled group's detector call) rides the slot header into the
        # worker; (0, 0) — the overwhelmingly common case — means the
        # worker skips span writing entirely.
        trace_id, span_id = current_trace()
        deadline = time.monotonic() + self.worker_timeout
        while not state.request.push(
            op,
            parts,
            count=count,
            num_hashes=k,
            timeout=self._poll,
            trace_id=trace_id,
            span_id=span_id,
        ):
            self._check_alive(state)
            if time.monotonic() > deadline:
                raise ParallelError(
                    f"worker {state.index} request ring stalled for "
                    f"{self.worker_timeout:.0f}s (deadlock guard)"
                )

    def _pop_verdicts(self, state: _WorkerState) -> np.ndarray:
        deadline = time.monotonic() + self.worker_timeout
        while True:
            popped = state.response.pop(timeout=self._poll)
            if popped is not None:
                op, count, _, payload = popped
                if op != OP_VERDICTS:  # pragma: no cover - protocol guard
                    state.response.release_slot()
                    raise ParallelError(f"worker {state.index} sent ring op {op}")
                verdicts = np.frombuffer(payload, dtype=bool, count=count).copy()
                state.response.release_slot()
                state.outstanding -= 1
                return verdicts
            self._check_alive(state)
            if time.monotonic() > deadline:
                raise ParallelError(
                    f"worker {state.index} produced no verdicts for "
                    f"{self.worker_timeout:.0f}s (deadlock guard)"
                )

    def _await_control(self, state: _WorkerState, tag: str):
        deadline = time.monotonic() + self.worker_timeout
        while True:
            if state.conn.poll(self._poll):
                try:
                    got, value = state.conn.recv()
                except (EOFError, OSError) as error:
                    raise _WorkerDied from error
                if got == "error":
                    raise ParallelError(f"worker {state.index} failed:\n{value}")
                if got != tag:
                    raise ParallelError(
                        f"worker {state.index} answered {got!r}, expected {tag!r}"
                    )
                return value
            if state.process is None or not state.process.is_alive():
                raise _WorkerDied
            if time.monotonic() > deadline:
                raise ParallelError(
                    f"worker {state.index} did not answer {tag!r} within "
                    f"{self.worker_timeout:.0f}s"
                )

    # ------------------------------------------------------------------
    # Sub-batch transactions
    # ------------------------------------------------------------------

    def _encode(self, shard: int, ids: np.ndarray, timestamps):
        """Slot payload for one piece, per the shard's transport plan."""
        op = self._ops[shard]
        if op == OP_INDICES:
            indices = precompute_indices(self._families[shard], ids)
            return op, (np.ascontiguousarray(indices, dtype=np.uint64).tobytes(),), int(
                indices.shape[1]
            )
        if op == OP_IDS_TS:
            return op, (ids.tobytes(), timestamps.tobytes()), 0
        return op, (ids.tobytes(),), 0

    def _dispatch(self, state: _WorkerState, ids: np.ndarray, timestamps) -> None:
        """Send one sub-batch (split into slot-sized pieces), without
        waiting for its verdicts; pops opportunistically when the ring
        is full so dispatching to many workers never deadlocks."""
        state.txn = (ids, timestamps)
        state.collected = []
        state.pieces_expected = 0
        shard = state.index
        step = self.slot_items
        for start in range(0, ids.shape[0], step):
            piece_ids = ids[start : start + step]
            piece_ts = timestamps[start : start + step] if timestamps is not None else None
            op, parts, k = self._encode(shard, piece_ids, piece_ts)
            while state.outstanding >= self.slots:
                state.collected.append(self._pop_verdicts(state))
            self._push(state, op, parts, count=piece_ids.shape[0], k=k)
            state.outstanding += 1
            state.pieces_expected += 1

    def _collect(self, state: _WorkerState) -> np.ndarray:
        """Gather the in-flight sub-batch's verdicts, journal it, and
        honour the checkpoint cadence."""
        while len(state.collected) < state.pieces_expected:
            state.collected.append(self._pop_verdicts(state))
        ids, timestamps = state.txn
        verdicts = (
            state.collected[0]
            if len(state.collected) == 1
            else np.concatenate(state.collected)
        )
        state.txn = None
        state.collected = []
        state.pieces_expected = 0
        state.journal.append((ids, timestamps))
        state.items_since_checkpoint += ids.shape[0]
        if (
            self.checkpoint_every_items
            and state.items_since_checkpoint >= self.checkpoint_every_items
        ):
            self._pull_checkpoint(state)
        return verdicts

    def _run_sync(self, state: _WorkerState, ids: np.ndarray, timestamps) -> np.ndarray:
        """Piece-by-piece push/pop of one sub-batch (replay/recovery path).

        Does not journal — callers replaying the journal must not grow it.
        """
        out: List[np.ndarray] = []
        step = self.slot_items
        shard = state.index
        for start in range(0, ids.shape[0], step):
            piece_ids = ids[start : start + step]
            piece_ts = timestamps[start : start + step] if timestamps is not None else None
            op, parts, k = self._encode(shard, piece_ids, piece_ts)
            self._push(state, op, parts, count=piece_ids.shape[0], k=k)
            state.outstanding += 1
            out.append(self._pop_verdicts(state))
        return out[0] if len(out) == 1 else np.concatenate(out)

    def _recover_txn(self, state: _WorkerState) -> Optional[np.ndarray]:
        """After an unclean death: respawn + replay, then rerun the
        in-flight sub-batch.  ``None`` means the shard degraded."""
        ids, timestamps = state.txn
        state.txn = None
        state.collected = []
        state.pieces_expected = 0
        while True:
            if not self._ensure_worker(state):
                self._degrade(state.index)
                entry = self._degraded[state.index]
                entry["clicks"] = int(entry["clicks"]) + int(ids.shape[0])
                return None
            try:
                verdicts = self._run_sync(state, ids, timestamps)
            except _WorkerDied:
                continue
            state.journal.append((ids, timestamps))
            state.items_since_checkpoint += ids.shape[0]
            if (
                self.checkpoint_every_items
                and state.items_since_checkpoint >= self.checkpoint_every_items
            ):
                self._pull_checkpoint(state)
            return verdicts

    def _policy_verdicts(self, shard: int, count: int) -> np.ndarray:
        policy = self._degraded[shard]["policy"]
        return np.full(count, policy is FailoverPolicy.FAIL_CLOSED, dtype=bool)

    def _shard_batch(self, shard: int, ids: np.ndarray, timestamps) -> np.ndarray:
        """One complete sub-batch transaction against one worker."""
        state = self._workers[shard]
        try:
            self._dispatch(state, ids, timestamps)
            return self._collect(state)
        except _WorkerDied:
            verdicts = self._recover_txn(state)
            if verdicts is None:
                return self._policy_verdicts(shard, ids.shape[0])
            return verdicts

    def _process_grouped(self, identifiers: np.ndarray, timestamps) -> np.ndarray:
        """Route, fan out to all workers, then gather in shard order."""
        out = np.empty(identifiers.shape[0], dtype=bool)
        if identifiers.shape[0] == 0:
            return out
        shard_of = route_batch(identifiers, len(self._workers))
        pending = []
        for shard, positions in shard_groups(shard_of):
            count = int(positions.shape[0])
            if self._per_shard_arrivals is not None:
                self._per_shard_arrivals[shard] += count
            entry = self._degraded.get(shard)
            if entry is not None:
                entry["clicks"] = int(entry["clicks"]) + count
                out[positions] = entry["policy"] is FailoverPolicy.FAIL_CLOSED
                continue
            ids = identifiers[positions]
            ts = timestamps[positions] if timestamps is not None else None
            state = self._workers[shard]
            try:
                self._dispatch(state, ids, ts)
            except _WorkerDied:
                verdicts = self._recover_txn(state)
                out[positions] = (
                    self._policy_verdicts(shard, count)
                    if verdicts is None
                    else verdicts
                )
                continue
            pending.append((state, positions))
        for state, positions in pending:
            try:
                verdicts = self._collect(state)
            except _WorkerDied:
                verdicts = self._recover_txn(state)
                if verdicts is None:
                    verdicts = self._policy_verdicts(
                        state.index, int(positions.shape[0])
                    )
            out[positions] = verdicts
        return out

    # ------------------------------------------------------------------
    # Checkpointing (two-phase) and state sync
    # ------------------------------------------------------------------

    def _pull_checkpoint(self, state: _WorkerState) -> bytes:
        """Fetch one worker's blob (quiesced by ring order) and truncate
        its replay journal."""
        while True:
            try:
                self._push(state, OP_CHECKPOINT)
                blob, counts = self._await_control(state, "checkpoint")
            except _WorkerDied:
                if not self._ensure_worker(state):
                    self._degrade(state.index)
                    return state.last_checkpoint
                continue
            state.last_checkpoint = blob
            state.last_counts = counts
            state.journal = []
            state.items_since_checkpoint = 0
            return blob

    def quiesce(self) -> None:
        """Drain every ring: collect any outstanding verdict batches.

        Between ``process_batch`` calls the engine is already quiet (the
        hot path gathers what it sends), so this is a cheap invariant
        check — but supervisors call it before checkpointing so the
        two-phase snapshot never races an in-flight batch.
        """
        for state in self._workers:
            while state.outstanding > 0:  # pragma: no cover - defensive
                state.collected.append(self._pop_verdicts(state))

    def resume(self) -> None:
        """Lifecycle counterpart of :meth:`quiesce` (see
        :class:`~repro.detection.api.DetectorLifecycle`).  The rings
        accept work whenever they have free slots, so leaving the
        quiesced state needs no action."""

    def spec(self):
        """One :class:`~repro.detection.DetectorSpec` rebuilding this fleet.

        Delegates to the base sharded detector (worker configuration is
        fixed at construction, so the stale base states do not matter)
        and stamps ``engine="parallel"``.
        """
        from dataclasses import replace

        return replace(self.base.spec(), engine="parallel")

    def _gather_blobs(self) -> List[bytes]:
        """Phase 1: quiesce + collect a consistent blob per shard.

        Checkpoint commands are fanned out to every healthy worker
        first, then the answers are gathered — the workers quiesce and
        serialize concurrently.  Degraded shards contribute their last
        checkpoint (their live sketch is gone, exactly as in the
        single-process failover model).
        """
        self.quiesce()
        blobs: List[Optional[bytes]] = [None] * len(self._workers)
        gathering = []
        for state in self._workers:
            if state.index in self._degraded:
                blobs[state.index] = state.last_checkpoint
                continue
            try:
                self._push(state, OP_CHECKPOINT)
            except _WorkerDied:
                blobs[state.index] = self._pull_after_death(state)
                continue
            gathering.append(state)
        for state in gathering:
            try:
                blob, counts = self._await_control(state, "checkpoint")
            except _WorkerDied:
                blobs[state.index] = self._pull_after_death(state)
                continue
            state.last_checkpoint = blob
            state.last_counts = counts
            state.journal = []
            state.items_since_checkpoint = 0
            blobs[state.index] = blob
        return blobs

    def _pull_after_death(self, state: _WorkerState) -> bytes:
        if not self._ensure_worker(state):
            self._degrade(state.index)
            return state.last_checkpoint
        return self._pull_checkpoint(state)

    def checkpoint_shard(self, shard: int) -> bytes:
        """Snapshot one shard's sketch (API parity with ShardedDetector)."""
        self._check_shard(shard)
        state = self._workers[shard]
        if shard in self._degraded:
            return state.last_checkpoint
        return self._pull_checkpoint(state)

    def _failover_header(self) -> Dict[str, Dict[str, object]]:
        return {
            str(shard): {"policy": entry["policy"].value, "clicks": entry["clicks"]}
            for shard, entry in self._degraded.items()
        }

    def _options(self) -> Dict[str, object]:
        # trace_dir is runtime-only and deliberately absent: a manifest
        # restored on another host must not try to write span shards to
        # a path that belonged to the recording run.
        return {
            "start_method": self.start_method,
            "slots": self.slots,
            "slot_items": self.slot_items,
            "respawn": self.respawn,
            "max_respawns": self.max_respawns,
            "death_policy": self.death_policy.value,
            "checkpoint_every_items": self.checkpoint_every_items,
            "worker_timeout": self.worker_timeout,
        }

    def checkpoint(self) -> bytes:
        """Two-phase consistent snapshot of the whole fleet.

        Phase 1 quiesces the rings and gathers per-worker blobs
        (:meth:`_gather_blobs`); phase 2 commits them into one manifest
        frame with the router's state.  ``save_detector`` dispatches
        here, so a :class:`~repro.resilience.SupervisedPipeline` journals
        a parallel deployment like any single detector.
        """
        blobs = self._gather_blobs()
        header: Dict[str, object] = {
            "kind": self._checkpoint_kind,
            "workers": len(self._workers),
            "lengths": [len(blob) for blob in blobs],
            "degraded": self._failover_header(),
            "options": self._options(),
        }
        if self._per_shard_arrivals is not None:
            header["per_shard_arrivals"] = list(self._per_shard_arrivals)
        return pack_frame(header, b"".join(blobs))

    def checkpoint_state(self) -> bytes:
        """Serialized fleet state (unified Detector-protocol spelling).

        Alias of :meth:`checkpoint`, so the parallel engines satisfy
        :class:`~repro.detection.api.Detector` /
        :class:`~repro.detection.api.TimedDetector` like every
        in-process variant.
        """
        return self.checkpoint()

    @classmethod
    def _from_checkpoint(cls, header: Dict[str, object], payload: bytes):
        blobs = _split_shard_blobs(header, payload)
        shards = [load_detector(blob) for blob in blobs]
        base_cls = TimeShardedDetector if cls._time_based else ShardedDetector
        base = base_cls(shards)
        if not cls._time_based:
            arrivals = header.get("per_shard_arrivals")
            if not isinstance(arrivals, list) or len(arrivals) != len(blobs):
                raise CheckpointError(
                    "parallel checkpoint arrivals do not match shards"
                )
            base._per_shard_arrivals = [int(count) for count in arrivals]
        base._restore_failover(header.get("degraded", {}))
        # The constructor accepts death_policy as its string value, so
        # the serialized options dict round-trips directly.
        return cls(base, **dict(header.get("options") or {}))

    def sync_base(self):
        """Write the workers' current state back into ``base`` and return it.

        After this the single-process detector is bit-identical to the
        fleet — the inverse of construction.
        """
        blobs = self._gather_blobs()
        for index, blob in enumerate(blobs):
            self.base.shards[index] = load_detector(blob)
        if self._per_shard_arrivals is not None:
            self.base._per_shard_arrivals = list(self._per_shard_arrivals)
        self.base._degraded = {
            shard: {"policy": entry["policy"], "clicks": int(entry["clicks"])}
            for shard, entry in self._degraded.items()
        }
        return self.base

    # ------------------------------------------------------------------
    # Aggregated views
    # ------------------------------------------------------------------

    def op_counts(self) -> Dict[str, int]:
        """Summed per-worker operation counters (bit-identical to the
        single-process totals; degraded shards report their last live
        values from the checkpoint they will respawn from)."""
        totals = {
            "word_reads": 0,
            "word_writes": 0,
            "hash_evaluations": 0,
            "elements": 0,
            "duplicates": 0,
        }
        for state in self._workers:
            counts = None
            if state.index not in self._degraded:
                counts = self._worker_control(state, OP_OPCOUNTS, "opcounts")
            if counts is None:
                # Degraded shard: its live sketch is gone; report the
                # totals as of the checkpoint it would respawn from.
                counts = state.last_counts or {}
            for key in totals:
                totals[key] += int(counts.get(key, 0))
        return totals

    def _worker_control(self, state: _WorkerState, op: int, tag: str):
        """One control round-trip with death handling; None if the shard
        ends up degraded."""
        while True:
            try:
                self._push(state, op)
                return self._await_control(state, tag)
            except _WorkerDied:
                if not self._ensure_worker(state):
                    self._degrade(state.index)
                    return None

    def telemetry_snapshot(self) -> Dict[str, object]:
        """Fleet-wide health: per-worker shard snapshots aggregated into
        one view, with per-worker health gauges and failover counters."""
        elements = 0
        duplicates = 0
        worst_fp = 0.0
        shards: Dict[str, Dict[str, float]] = {}
        workers: Dict[str, Dict[str, float]] = {}
        for state in self._workers:
            index = state.index
            alive = state.process is not None and state.process.is_alive()
            degraded = index in self._degraded
            snapshot = None
            if not degraded:
                snapshot = self._worker_control(state, OP_TELEMETRY, "telemetry")
                degraded = index in self._degraded  # may have just degraded
                alive = state.process is not None and state.process.is_alive()
            gauges: Dict[str, float] = {}
            if snapshot is not None:
                gauges.update(snapshot.get("gauges", {}))
                counters = snapshot.get("counters", {})
                elements += int(counters.get("elements", 0))
                duplicates += int(counters.get("duplicates", 0))
                worst_fp = max(worst_fp, float(gauges.get("estimated_fp_rate", 0.0)))
            gauges["degraded"] = 1.0 if degraded else 0.0
            gauges["alive"] = 1.0 if alive else 0.0
            gauges["respawns"] = float(state.respawns)
            shards[str(index)] = gauges
            workers[str(index)] = {
                "alive": 1.0 if alive else 0.0,
                "respawns": float(state.respawns),
                "degraded": 1.0 if degraded else 0.0,
                "journal_batches": float(len(state.journal)),
            }
        snapshot = {
            "gauges": {
                "estimated_fp_rate": worst_fp,
                "observed_duplicate_rate": duplicates / elements if elements else 0.0,
                "degraded_shards": float(len(self._degraded)),
                "workers_alive": sum(entry["alive"] for entry in workers.values()),
            },
            "counters": {
                "elements": elements,
                "duplicates": duplicates,
                "worker_deaths": self.worker_deaths,
                "worker_respawns": self.worker_respawns,
            },
            "shards": shards,
            "workers": workers,
        }
        if self._per_shard_arrivals is not None:
            snapshot["gauges"]["load_imbalance"] = self.load_imbalance()
        return snapshot

    def attach_telemetry(self, registry) -> None:
        """Route worker deaths/respawns/failovers through a registry."""
        self._death_counter = registry.counter(
            "repro_worker_deaths_total", "Worker processes lost uncleanly"
        )
        self._respawn_counter = registry.counter(
            "repro_worker_respawns_total",
            "Workers respawned from their last checkpoint",
        )
        self._failover_counter = registry.counter(
            "repro_shard_failovers_total",
            "Shards declared lost, by failover policy",
            labels=("policy",),
        )

    # -- introspection --------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._workers)

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def memory_bits(self) -> int:
        return self.base.memory_bits

    def degraded_shards(self) -> Dict[int, Dict[str, object]]:
        return {
            shard: {"policy": entry["policy"].value, "clicks": entry["clicks"]}
            for shard, entry in self._degraded.items()
        }

    @property
    def is_degraded(self) -> bool:
        return bool(self._degraded)

    def worker_pids(self) -> List[Optional[int]]:
        return [
            state.process.pid if state.process is not None else None
            for state in self._workers
        ]

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self, sync: bool = False) -> None:
        """Stop the fleet.  With ``sync=True``, first write the workers'
        final state back into ``base`` (see :meth:`sync_base`)."""
        if self._closed:
            return
        if sync:
            self.sync_base()
        for state in self._workers:
            if (
                state.process is not None
                and state.process.is_alive()
                and state.index not in self._degraded
            ):
                try:
                    if state.request.push(OP_STOP, timeout=0.5):
                        self._await_control(state, "stopped")
                except (ParallelError, _WorkerDied, OSError):
                    pass
        for state in self._workers:
            self._teardown(state)
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class ParallelShardedDetector(_ParallelEngine):
    """Count-based sharded detection across worker processes.

    Drop-in for :class:`~repro.detection.sharded.ShardedDetector` on the
    processing interface (``process`` / ``process_batch``), with
    bit-identical verdicts, checkpoint states, and summed op counts.
    """

    _time_based = False
    _checkpoint_kind = "parallel-sharded"

    @classmethod
    def of_tbf(
        cls,
        global_window: int,
        num_workers: int,
        total_entries: int,
        num_hashes: int = 10,
        seed: int = 0,
        **options,
    ) -> "ParallelShardedDetector":
        """``num_workers`` TBF shards, one worker process each.

        Deprecated: build through :func:`repro.detection.create_detector`
        with ``DetectorSpec('tbf', ..., shards=N, engine='parallel')``.
        """
        warnings.warn(
            "ParallelShardedDetector.of_tbf is deprecated; build through "
            "create_detector(DetectorSpec('tbf', ..., shards=N, "
            "engine='parallel'))",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls._of_tbf(
            global_window, num_workers, total_entries, num_hashes,
            seed=seed, **options,
        )

    @classmethod
    def _of_tbf(
        cls,
        global_window: int,
        num_workers: int,
        total_entries: int,
        num_hashes: int = 10,
        seed: int = 0,
        **options,
    ) -> "ParallelShardedDetector":
        return cls(
            ShardedDetector._of_tbf(
                global_window, num_workers, total_entries, num_hashes, seed=seed
            ),
            **options,
        )

    def process(self, identifier: int) -> bool:
        """Scalar interface (one ring round-trip per click — prefer
        :meth:`process_batch` on the hot path)."""
        shard = self.base.router(identifier)
        self._per_shard_arrivals[shard] += 1
        entry = self._degraded.get(shard)
        if entry is not None:
            entry["clicks"] = int(entry["clicks"]) + 1
            return entry["policy"] is FailoverPolicy.FAIL_CLOSED
        ids = np.asarray([identifier], dtype=np.uint64)
        return bool(self._shard_batch(shard, ids, None)[0])

    def process_batch(self, identifiers: "np.ndarray") -> "np.ndarray":
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        return self._process_grouped(identifiers, None)

    def load_imbalance(self) -> float:
        total = sum(self._per_shard_arrivals)
        if total == 0:
            return 1.0
        return max(self._per_shard_arrivals) / (total / len(self._workers))

    def shard_arrivals(self) -> List[int]:
        return list(self._per_shard_arrivals)


class ParallelTimeShardedDetector(_ParallelEngine):
    """Time-based sharded detection across worker processes (exact
    window semantics — the global clock travels with every batch)."""

    _time_based = True
    _checkpoint_kind = "parallel-time-sharded"

    @classmethod
    def of_tbf(
        cls,
        duration: float,
        resolution: int,
        num_workers: int,
        total_entries: int,
        num_hashes: int = 10,
        seed: int = 0,
        **options,
    ) -> "ParallelTimeShardedDetector":
        """Deprecated: build through :func:`repro.detection.create_detector`
        with ``DetectorSpec('tbf-time', ..., shards=N, engine='parallel')``."""
        warnings.warn(
            "ParallelTimeShardedDetector.of_tbf is deprecated; build through "
            "create_detector(DetectorSpec('tbf-time', ..., shards=N, "
            "engine='parallel'))",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls._of_tbf(
            duration, resolution, num_workers, total_entries, num_hashes,
            seed=seed, **options,
        )

    @classmethod
    def _of_tbf(
        cls,
        duration: float,
        resolution: int,
        num_workers: int,
        total_entries: int,
        num_hashes: int = 10,
        seed: int = 0,
        **options,
    ) -> "ParallelTimeShardedDetector":
        return cls(
            TimeShardedDetector._of_tbf(
                duration, resolution, num_workers, total_entries, num_hashes, seed=seed
            ),
            **options,
        )

    def process_at(self, identifier: int, timestamp: float) -> bool:
        shard = self.base.router(identifier)
        entry = self._degraded.get(shard)
        if entry is not None:
            entry["clicks"] = int(entry["clicks"]) + 1
            return entry["policy"] is FailoverPolicy.FAIL_CLOSED
        ids = np.asarray([identifier], dtype=np.uint64)
        timestamps = np.asarray([timestamp], dtype=np.float64)
        return bool(self._shard_batch(shard, ids, timestamps)[0])

    def process_batch_at(
        self, identifiers: "np.ndarray", timestamps: "np.ndarray"
    ) -> "np.ndarray":
        identifiers = np.asarray(identifiers, dtype=np.uint64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if identifiers.ndim != 1:
            raise ValueError(f"identifiers must be 1-D, got {identifiers.ndim}-D")
        if timestamps.shape != identifiers.shape:
            raise ValueError(
                f"timestamps shape {timestamps.shape} != identifiers "
                f"shape {identifiers.shape}"
            )
        return self._process_grouped(identifiers, timestamps)


def lift_sharded(detector, workers: Optional[int] = None, **options):
    """Lift a single-process sharded detector into a parallel engine.

    ``workers`` (when given) must equal the detector's shard count —
    each hash-partitioned shard runs in exactly one worker process, so
    the shard count *is* the parallelism degree.  Already-parallel
    engines pass through unchanged.
    """
    if isinstance(detector, _ParallelEngine):
        return detector
    if type(detector) is ShardedDetector:
        cls = ParallelShardedDetector
    elif type(detector) is TimeShardedDetector:
        cls = ParallelTimeShardedDetector
    else:
        raise ConfigurationError(
            f"cannot parallelize {type(detector).__name__}; build a "
            "ShardedDetector/TimeShardedDetector with one shard per worker"
        )
    if workers is not None and workers != detector.num_shards:
        raise ConfigurationError(
            f"workers={workers} but the detector has {detector.num_shards} "
            "shards; one worker runs exactly one shard"
        )
    return cls(detector, **options)


def _save_parallel(engine: ParallelShardedDetector) -> bytes:
    return engine.checkpoint()


def _load_parallel(header, payload) -> ParallelShardedDetector:
    return ParallelShardedDetector._from_checkpoint(header, payload)


def _save_parallel_time(engine: ParallelTimeShardedDetector) -> bytes:
    return engine.checkpoint()


def _load_parallel_time(header, payload) -> ParallelTimeShardedDetector:
    return ParallelTimeShardedDetector._from_checkpoint(header, payload)


register_checkpoint_kind(
    "parallel-sharded", ParallelShardedDetector, _save_parallel, _load_parallel
)
register_checkpoint_kind(
    "parallel-time-sharded",
    ParallelTimeShardedDetector,
    _save_parallel_time,
    _load_parallel_time,
)
