"""Multi-core parallel detection: process-backed shards over shared memory.

The package splits into three layers:

* :mod:`repro.parallel.ring` — the SPSC shared-memory batch transport
  (no pickling on the hot path, semaphore-paced bounded buffers).
* :mod:`repro.parallel.worker` — the worker-process main loop serving
  one shard from its rings (pre-hashed probes, checkpoint/telemetry
  control commands).
* :mod:`repro.parallel.engine` — the router-side engines
  (:class:`ParallelShardedDetector` / :class:`ParallelTimeShardedDetector`)
  with bit-identical semantics to the single-process sharded detectors,
  journaled respawn-from-checkpoint on worker death, and two-phase
  fleet checkpoints.

Importing this package registers the ``parallel-sharded`` and
``parallel-time-sharded`` checkpoint kinds.
"""

from .engine import (
    ParallelShardedDetector,
    ParallelTimeShardedDetector,
    lift_sharded,
)
from .ring import BatchRing, RingSpec

__all__ = [
    "BatchRing",
    "RingSpec",
    "ParallelShardedDetector",
    "ParallelTimeShardedDetector",
    "lift_sharded",
]
