"""Worker-process main loop for the parallel detection engine.

Each worker owns one hash-partitioned shard: it receives the shard's
checkpoint blob over its control pipe at startup (so the worker starts
from *bit-identical* state, whatever the start method), then serves a
command stream from its request ring:

* ``OP_INDICES`` — a pre-hashed batch: a ``(count, k)`` uint64 index
  array.  The router already evaluated the hash family, so the worker
  only probes/sets — it tallies the hash evaluations (to keep summed
  :class:`~repro.bitset.words.OperationCounter` totals bit-identical to
  a single-process run) and calls ``process_indices_batch``.
* ``OP_IDS`` — raw identifiers, for shard detectors without a
  pre-hashable batch path; the worker hashes locally.
* ``OP_IDS_TS`` — identifiers + timestamps for time-based shards
  (``process_batch_at``; the hash is evaluated inside the unit-grouped
  batch kernel, so there is no separable pre-hash entry point).
* ``OP_CHECKPOINT`` / ``OP_TELEMETRY`` / ``OP_OPCOUNTS`` — control
  commands answered over the pipe.  Because they travel through the
  same FIFO ring as batches, reaching one means every earlier batch has
  been fully applied — the ring *is* the quiescence barrier.
* ``OP_STOP`` — acknowledge and exit.

Verdict batches return through the response ring as one bool byte per
click.  Failure discipline: any exception is reported over the pipe as
``("error", traceback)`` and the worker exits — the engine decides
whether that propagates (deterministic data errors such as a regressing
timestamp) or triggers respawn-from-checkpoint (unclean death).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.checkpoint import load_detector, save_detector
from ..telemetry.requesttrace import SpanShardWriter, new_span_id
from .ring import BatchRing, RingSpec

__all__ = [
    "OP_STOP",
    "OP_INDICES",
    "OP_IDS",
    "OP_IDS_TS",
    "OP_CHECKPOINT",
    "OP_TELEMETRY",
    "OP_OPCOUNTS",
    "OP_VERDICTS",
    "WorkerSpec",
    "shard_worker_main",
]

OP_STOP = 0
OP_INDICES = 1
OP_IDS = 2
OP_IDS_TS = 3
OP_CHECKPOINT = 4
OP_TELEMETRY = 5
OP_OPCOUNTS = 6
OP_VERDICTS = 7

#: Poll granularity for ring waits; each expiry re-checks parent liveness.
_POLL_SECONDS = 0.2


@dataclass
class WorkerSpec:
    """Startup bundle for one worker (picklable under every start method)."""

    index: int
    request: RingSpec
    response: RingSpec
    conn: object  # child end of the control pipe
    #: When set, the worker appends a span shard here for every batch
    #: whose ring slot carried a nonzero trace context (sampled tracing).
    trace_dir: Optional[str] = None


def _op_counts(detector) -> dict:
    counter = detector.counter
    return {
        "word_reads": counter.word_reads,
        "word_writes": counter.word_writes,
        "hash_evaluations": counter.hash_evaluations,
        "elements": counter.elements,
        "duplicates": getattr(detector, "duplicates", 0),
    }


def _apply_op_counts(detector, counts: dict) -> None:
    """Seed a freshly loaded detector with its predecessor's counters.

    Checkpoint blobs deliberately omit the :class:`OperationCounter`
    (profiling metadata, not sketch state), but a *respawned* worker must
    continue the dead worker's totals or the engine's summed counts
    would diverge from an uninterrupted run."""
    counter = detector.counter
    counter.word_reads = int(counts["word_reads"])
    counter.word_writes = int(counts["word_writes"])
    counter.hash_evaluations = int(counts["hash_evaluations"])
    counter.elements = int(counts["elements"])


def _parent_alive() -> bool:
    parent = multiprocessing.parent_process()
    return parent is None or parent.is_alive()


def _push_verdicts(ring: BatchRing, verdicts: "np.ndarray") -> bool:
    """Blocking push of one verdict batch; False if the parent vanished."""
    payload = np.ascontiguousarray(verdicts, dtype=bool).tobytes()
    while not ring.push(
        OP_VERDICTS, (payload,), count=len(payload), timeout=_POLL_SECONDS
    ):
        if not _parent_alive():
            return False
    return True


def shard_worker_main(spec: WorkerSpec) -> None:
    """Entry point run in the child process (top-level for ``spawn``)."""
    conn = spec.conn
    request = BatchRing.attach(spec.request)
    response = BatchRing.attach(spec.response)
    spans = (
        SpanShardWriter(spec.trace_dir, f"worker-{spec.index}")
        if spec.trace_dir
        else None
    )
    try:
        blob, counts = conn.recv()
        detector = load_detector(blob)
        if counts is not None:
            _apply_op_counts(detector, counts)
        _serve(detector, request, response, conn, spans)
    except (EOFError, BrokenPipeError, KeyboardInterrupt):  # pragma: no cover
        pass
    except Exception:  # noqa: BLE001 - report, then die; the engine decides
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, BrokenPipeError):  # pragma: no cover
            pass
    finally:
        if spans is not None:
            spans.close()
        request.close()
        response.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


def _serve(
    detector,
    request: BatchRing,
    response: BatchRing,
    conn,
    spans: Optional[SpanShardWriter] = None,
) -> None:
    process_batch = getattr(detector, "process_batch", None)
    process_indices_batch = getattr(detector, "process_indices_batch", None)
    process_batch_at = getattr(detector, "process_batch_at", None)

    while True:
        popped = request.pop(timeout=_POLL_SECONDS)
        if popped is None:
            if not _parent_alive():
                return
            continue
        op, count, num_hashes, payload = popped

        if op == OP_STOP:
            request.release_slot()
            conn.send(("stopped", None))
            return

        if op == OP_CHECKPOINT:
            request.release_slot()
            # The counter snapshot rides along so a respawn from this
            # checkpoint continues the same operation totals.
            conn.send(("checkpoint", (save_detector(detector), _op_counts(detector))))
            continue

        if op == OP_TELEMETRY:
            request.release_slot()
            conn.send(("telemetry", detector.telemetry_snapshot()))
            continue

        if op == OP_OPCOUNTS:
            request.release_slot()
            conn.send(("opcounts", _op_counts(detector)))
            continue

        trace_id, parent_span = request.last_trace
        traced = spans is not None and trace_id != 0
        if traced:
            span_wall = time.time()
            span_t0 = time.perf_counter()

        if op == OP_INDICES:
            indices = np.frombuffer(
                payload, dtype=np.uint64, count=count * num_hashes
            ).reshape(count, num_hashes)
            # Replicate process_batch exactly: it tallies the hash
            # evaluations before delegating to the index kernel, so the
            # summed counters match the single-process run bit for bit.
            detector.counter.hash_evaluations += count * num_hashes
            verdicts = process_indices_batch(indices)
        elif op == OP_IDS:
            identifiers = np.frombuffer(payload, dtype=np.uint64, count=count)
            if process_batch is not None:
                verdicts = process_batch(identifiers)
            else:
                process = detector.process
                verdicts = np.fromiter(
                    (process(int(identifier)) for identifier in identifiers),
                    dtype=bool,
                    count=count,
                )
        elif op == OP_IDS_TS:
            identifiers = np.frombuffer(payload, dtype=np.uint64, count=count)
            timestamps = np.frombuffer(
                payload, dtype=np.float64, count=count, offset=count * 8
            )
            if process_batch_at is not None:
                verdicts = process_batch_at(identifiers, timestamps)
            else:
                process_at = detector.process_at
                verdicts = np.fromiter(
                    (
                        process_at(int(identifier), float(timestamp))
                        for identifier, timestamp in zip(identifiers, timestamps)
                    ),
                    dtype=bool,
                    count=count,
                )
        else:
            request.release_slot()
            raise RuntimeError(f"unknown ring op {op}")

        if traced:
            spans.write(
                "worker.shard_batch",
                trace_id,
                new_span_id(),
                parent_id=parent_span,
                start=span_wall,
                duration=time.perf_counter() - span_t0,
                clicks=count,
                op=op,
            )

        # The verdict array no longer references the slot (batch kernels
        # copy on dtype conversion), so free it before the response push
        # can block.
        request.release_slot()
        if not _push_verdicts(response, verdicts):
            return
