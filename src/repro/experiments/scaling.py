"""Scale-invariance validation for the reproduction methodology.

Every figure in this reproduction runs at ``N = 2^20 / scale`` instead
of the paper's ``2^20``, on the grounds that Bloom-filter error rates
depend only on ``k`` and the load ratio ``n/m``
(:mod:`repro.bloom.params`).  This experiment *tests* that justification
instead of assuming it: it runs the Figure 2(b) protocol at several
scales with identical ratios and checks that the measured FP rate stays
on the (scale-free) theory curve at each size.

If scaling distorted results, the measured column would drift with N;
it does not — which is the license for reporting scaled measurements in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..analysis.theory import tbf_fp
from ..core import TBFDetector
from ..metrics.reporting import render_table
from .config import FPExperimentConfig, scaled_fig2b_entries
from .runner import run_distinct_stream_fp


@dataclass
class ScalingRow:
    scale: int
    window_size: int
    num_entries: int
    measured_fp: float
    theory_fp: float

    @property
    def ratio(self) -> float:
        return self.measured_fp / self.theory_fp if self.theory_fp else 0.0


@dataclass
class ScalingResult:
    num_hashes: int
    rows: List[ScalingRow] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["scale", "N", "m", "measured_fp", "theory_fp", "measured/theory"],
            [
                [
                    row.scale,
                    row.window_size,
                    row.num_entries,
                    row.measured_fp,
                    row.theory_fp,
                    round(row.ratio, 3),
                ]
                for row in self.rows
            ],
            title=(
                "Scale invariance of the FP rate "
                f"(Figure 2(b) protocol, k={self.num_hashes})"
            ),
        )


def run_scaling_validation(
    scales: Sequence[int] = (512, 256, 128, 64),
    num_hashes: int = 4,
    seed: int = 0,
) -> ScalingResult:
    """Measure the Figure 2(b) FP rate at several scales, fixed ratios.

    ``k = 4`` rather than the optimal 10 keeps the expected FP counts
    high (tens to hundreds per run) so relative comparisons across
    scales are statistically tight.
    """
    result = ScalingResult(num_hashes=num_hashes)
    for scale in scales:
        config = FPExperimentConfig.scaled(scale, seed=seed + scale)
        num_entries = scaled_fig2b_entries(scale)
        detector = TBFDetector(
            config.window_size, num_entries, num_hashes, seed=seed + scale
        )
        measurement = run_distinct_stream_fp(detector, config)
        result.rows.append(
            ScalingRow(
                scale=scale,
                window_size=config.window_size,
                num_entries=num_entries,
                measured_fp=measurement.rate,
                theory_fp=tbf_fp(config.window_size, num_entries, num_hashes),
            )
        )
    return result
