"""Figure 2(a): GBF false-positive rate vs number of hash functions.

Paper setup (§5): jumping window ``N = 2^20``, ``Q = 8`` sub-windows,
``m = 1,876,246`` bits per lane filter; a stream of ``20N`` distinct
identifiers; false positives counted over the last ``10N`` clicks
(after the structure stabilizes).  At ``k = 10`` (the optimum for a
lane's ``N/Q`` load) the paper reports an FP rate of about ``0.001``.

We sweep ``k`` and report three curves: the measured rate, the paper's
per-lane theoretical rate, and the query-level (any-of-Q-lanes)
theoretical rate; the measured points track the query-level curve (see
DESIGN.md §3.2 and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.theory import gbf_subfilter_fp, gbf_window_fp
from ..core import GBFDetector
from ..metrics.reporting import render_series
from .config import (
    FPExperimentConfig,
    PAPER_FIG2A_SUBWINDOWS,
    scale_factor,
    scaled_fig2a_bits,
)
from .runner import run_distinct_stream_fp

DEFAULT_K_VALUES = tuple(range(2, 15, 2))


@dataclass
class Figure2aResult:
    """All series of the reproduced figure."""

    window_size: int
    num_subwindows: int
    bits_per_filter: int
    k_values: List[int] = field(default_factory=list)
    measured: List[float] = field(default_factory=list)
    theory_per_lane: List[float] = field(default_factory=list)
    theory_query: List[float] = field(default_factory=list)

    def render(self) -> str:
        title = (
            f"Figure 2(a) - GBF FP rate over jumping windows "
            f"(N={self.window_size}, Q={self.num_subwindows}, "
            f"m={self.bits_per_filter})"
        )
        return render_series(
            "k",
            self.k_values,
            [
                ("measured", self.measured),
                ("theory(per-lane)", self.theory_per_lane),
                ("theory(query)", self.theory_query),
            ],
            title=title,
        )


def run_figure2a(
    scale: Optional[int] = None,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    seed: int = 0,
) -> Figure2aResult:
    """Reproduce Figure 2(a) at ``N = 2^20 / scale`` (same m/N, Q, k)."""
    scale = scale or scale_factor()
    config = FPExperimentConfig.scaled(scale, seed=seed)
    bits_per_filter = scaled_fig2a_bits(scale)
    result = Figure2aResult(
        window_size=config.window_size,
        num_subwindows=PAPER_FIG2A_SUBWINDOWS,
        bits_per_filter=bits_per_filter,
    )
    for k in k_values:
        detector = GBFDetector(
            window_size=config.window_size,
            num_subwindows=PAPER_FIG2A_SUBWINDOWS,
            bits_per_filter=bits_per_filter,
            num_hashes=k,
            seed=seed + k,
        )
        measurement = run_distinct_stream_fp(detector, config)
        result.k_values.append(k)
        result.measured.append(measurement.rate)
        result.theory_per_lane.append(
            gbf_subfilter_fp(
                config.window_size, PAPER_FIG2A_SUBWINDOWS, bits_per_filter, k
            )
        )
        result.theory_query.append(
            gbf_window_fp(
                config.window_size, PAPER_FIG2A_SUBWINDOWS, bits_per_filter, k
            )
        )
    return result
