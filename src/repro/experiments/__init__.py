"""Reproduction harness: one module per paper figure, plus ablations."""

from .ablations import (
    CBFWidthResult,
    LandmarkMissResult,
    QCrossoverResult,
    TBFSlackResult,
    run_cbf_width_ablation,
    run_landmark_boundary_ablation,
    run_q_crossover_ablation,
    run_tbf_slack_ablation,
)
from .config import (
    DEFAULT_SCALE,
    FPExperimentConfig,
    PAPER_WINDOW_SIZE,
    scale_factor,
)
from .figure1 import Figure1Result, run_figure1
from .figure2a import Figure2aResult, run_figure2a
from .figure2b import Figure2bResult, run_figure2b
from .runner import FPMeasurement, measure_false_positives, run_distinct_stream_fp
from .scaling import ScalingResult, run_scaling_validation

__all__ = [
    "run_figure1",
    "run_figure2a",
    "run_figure2b",
    "Figure1Result",
    "Figure2aResult",
    "Figure2bResult",
    "run_tbf_slack_ablation",
    "run_q_crossover_ablation",
    "run_cbf_width_ablation",
    "run_landmark_boundary_ablation",
    "LandmarkMissResult",
    "TBFSlackResult",
    "QCrossoverResult",
    "CBFWidthResult",
    "run_scaling_validation",
    "ScalingResult",
    "FPExperimentConfig",
    "FPMeasurement",
    "measure_false_positives",
    "run_distinct_stream_fp",
    "scale_factor",
    "DEFAULT_SCALE",
    "PAPER_WINDOW_SIZE",
]
