"""Shared experiment execution: the §5 false-positive protocol.

"We simulate our algorithms by processing synthetic click streams which
have no duplicate click" — so on these streams *every* reported
duplicate is a false positive, and the FP rate is simply (reports in
the measurement region) / (elements in the measurement region).

Detectors that expose ``process_indices`` plus a ``family`` attribute
are driven through pre-computed batch hashing (bit-identical to online
hashing, verified by tests); anything else is driven through plain
``process``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hashing.vectorized import iter_precomputed_indices
from ..streams.generators import distinct_stream
from .config import FPExperimentConfig

_BATCH = 1 << 15


@dataclass(frozen=True)
class FPMeasurement:
    """Outcome of one false-positive run."""

    queries: int
    false_positives: int

    @property
    def rate(self) -> float:
        return self.false_positives / self.queries if self.queries else 0.0


def run_distinct_stream_fp(detector, config: FPExperimentConfig) -> FPMeasurement:
    """Run the paper's protocol: 20N distinct ids, count FPs in the last 10N."""
    stream = distinct_stream(config.stream_length, config.seed)
    return measure_false_positives(detector, stream, config.measure_from)


def measure_false_positives(
    detector, identifiers: "np.ndarray", measure_from: int
) -> FPMeasurement:
    """Feed a duplicate-free stream; count duplicate reports past ``measure_from``."""
    total = len(identifiers)
    false_positives = 0
    position = 0
    if hasattr(detector, "process_indices") and hasattr(detector, "family"):
        family = detector.family
        process = detector.process_indices
        counter = getattr(detector, "counter", None)
        num_hashes = family.num_hashes
        for rows in iter_precomputed_indices(family, identifiers, _BATCH):
            if counter is not None:
                counter.hash_evaluations += num_hashes * rows.shape[0]
            for row in rows:
                if process(row) and position >= measure_from:
                    false_positives += 1
                position += 1
    else:
        process = detector.process
        for identifier in identifiers:
            if process(int(identifier)) and position >= measure_from:
                false_positives += 1
            position += 1
    queries = total - measure_from
    return FPMeasurement(queries=queries, false_positives=false_positives)


def run_labeled_stream(detector, exact_detector, identifiers) -> "LabeledRunResult":
    """Run a (possibly duplicate-carrying) stream through a sketch and the
    exact labeler simultaneously, tallying the confusion matrix."""
    from ..metrics.confusion import ConfusionMatrix

    matrix = ConfusionMatrix()
    for identifier in identifiers:
        identifier = int(identifier)
        predicted = detector.process(identifier)
        actual = exact_detector.process(identifier)
        matrix.update(predicted, actual)
    return LabeledRunResult(matrix=matrix)


@dataclass(frozen=True)
class LabeledRunResult:
    matrix: object
