"""Ablation studies on the design choices DESIGN.md calls out.

* **A1 — TBF cleanup slack C** (§4.1): "a smaller C means less space
  requirement and larger operation time, and a larger C means larger
  space requirement and less operation time."  We sweep C and measure
  entry width, sweep cost, memory, and FP rate.
* **A2 — GBF/TBF crossover in Q** (§4 opening): GBF's per-element cost
  grows with ``Q`` (lane words + cleaning); TBF's does not.  We locate
  the crossover with both predicted and *measured* word operations.
* **A3 — counting-filter counter width** (§3.3): the baseline's
  counters must hold up to ``N/Q`` and ``N``; narrower counters
  saturate, producing stuck-on false positives and genuine false
  negatives.  We sweep the width on a duplicate-carrying stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..baselines import ExactDetector, MetwallyCBFDetector
from ..core import GBFDetector, TBFDetector, TBFJumpingDetector, gbf_cost, tbf_cost
from ..metrics.confusion import ConfusionMatrix
from ..metrics.reporting import render_table
from ..streams.generators import DuplicateSpec, duplicated_stream
from .config import FPExperimentConfig, scale_factor, scaled_fig2b_entries
from .runner import run_distinct_stream_fp


# ----------------------------------------------------------------------
# A1: TBF cleanup slack
# ----------------------------------------------------------------------

@dataclass
class TBFSlackRow:
    cleanup_slack: int
    entry_bits: int
    scan_per_element: int
    memory_bits: int
    measured_fp: float
    theory_fp: float


@dataclass
class TBFSlackResult:
    window_size: int
    num_entries: int
    num_hashes: int
    rows: List[TBFSlackRow] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["C", "entry_bits", "scan/elem", "memory_bits", "measured_fp", "theory_fp"],
            [
                [
                    row.cleanup_slack,
                    row.entry_bits,
                    row.scan_per_element,
                    row.memory_bits,
                    row.measured_fp,
                    row.theory_fp,
                ]
                for row in self.rows
            ],
            title=(
                f"Ablation A1 - TBF space/time trade-off in C "
                f"(N={self.window_size}, m={self.num_entries}, k={self.num_hashes})"
            ),
        )


def run_tbf_slack_ablation(
    scale: Optional[int] = None,
    slack_fractions: Sequence[float] = (1 / 16, 1 / 4, 1.0, 4.0),
    num_hashes: int = 10,
    seed: int = 0,
) -> TBFSlackResult:
    """Sweep ``C = fraction * N`` (fraction 0 selects the paper's C=0
    full-rescan variant — supported, but it costs O(m) *entry scans per
    element* and is only tractable at tiny scales)."""
    from ..analysis.theory import tbf_fp

    scale = scale or scale_factor()
    config = FPExperimentConfig.scaled(scale, seed=seed)
    num_entries = scaled_fig2b_entries(scale)
    result = TBFSlackResult(
        window_size=config.window_size,
        num_entries=num_entries,
        num_hashes=num_hashes,
    )
    for fraction in slack_fractions:
        slack = max(0, round(fraction * config.window_size) - (1 if fraction == 1.0 else 0))
        detector = TBFDetector(
            window_size=config.window_size,
            num_entries=num_entries,
            num_hashes=num_hashes,
            cleanup_slack=slack,
            seed=seed,
        )
        measurement = run_distinct_stream_fp(detector, config)
        result.rows.append(
            TBFSlackRow(
                cleanup_slack=slack,
                entry_bits=detector.entry_bits,
                scan_per_element=detector.scan_per_element,
                memory_bits=detector.memory_bits,
                measured_fp=measurement.rate,
                theory_fp=tbf_fp(config.window_size, num_entries, num_hashes),
            )
        )
    return result


# ----------------------------------------------------------------------
# A2: GBF vs TBF word operations as Q grows
# ----------------------------------------------------------------------

@dataclass
class QCrossoverRow:
    num_subwindows: int
    gbf_predicted: float
    gbf_measured: float
    tbf_predicted: float
    tbf_measured: float


@dataclass
class QCrossoverResult:
    window_size: int
    total_memory_bits: int
    num_hashes: int
    word_bits: int
    rows: List[QCrossoverRow] = field(default_factory=list)

    @property
    def crossover_q(self) -> Optional[int]:
        """First swept Q where TBF needs fewer measured ops than GBF."""
        for row in self.rows:
            if row.tbf_measured < row.gbf_measured:
                return row.num_subwindows
        return None

    def render(self) -> str:
        return render_table(
            ["Q", "GBF ops (pred)", "GBF ops (meas)", "TBF ops (pred)", "TBF ops (meas)"],
            [
                [
                    row.num_subwindows,
                    row.gbf_predicted,
                    row.gbf_measured,
                    row.tbf_predicted,
                    row.tbf_measured,
                ]
                for row in self.rows
            ],
            title=(
                f"Ablation A2 - word ops per element vs Q "
                f"(N={self.window_size}, M={self.total_memory_bits} bits, "
                f"k={self.num_hashes}, D={self.word_bits})"
            ),
        )


def run_q_crossover_ablation(
    window_size: int = 1 << 12,
    total_memory_bits: int = 1 << 18,
    q_values: Sequence[int] = (4, 8, 16, 32, 64, 128, 256),
    num_hashes: int = 6,
    word_bits: int = 64,
    seed: int = 0,
) -> QCrossoverResult:
    """Measure per-element word ops for both algorithms across Q.

    Both detectors get the same total memory budget.  The TBF runs in
    jumping-window mode (sub-window timestamps) so the comparison is
    like for like.  Measured ops come from the detectors' own counters
    over a full window of distinct traffic after a warm-up window.
    """
    import math

    from ..streams.generators import distinct_stream

    result = QCrossoverResult(
        window_size=window_size,
        total_memory_bits=total_memory_bits,
        num_hashes=num_hashes,
        word_bits=word_bits,
    )
    warmup = window_size * 2
    measured_span = window_size
    stream = distinct_stream(warmup + measured_span, seed)
    for num_subwindows in q_values:
        if window_size % num_subwindows:
            continue
        bits_per_filter = total_memory_bits // (num_subwindows + 1)
        gbf = GBFDetector(
            window_size,
            num_subwindows,
            bits_per_filter,
            num_hashes,
            word_bits=word_bits,
            seed=seed,
        )
        entry_bits = max(1, math.ceil(math.log2(2 * num_subwindows + 2)))
        tbf = TBFJumpingDetector(
            window_size,
            num_subwindows,
            max(1, total_memory_bits // entry_bits),
            num_hashes,
            seed=seed,
        )
        gbf_measured = _measure_word_ops(gbf, stream, warmup)
        tbf_measured = _measure_word_ops(tbf, stream, warmup)
        subwindow = window_size // num_subwindows
        result.rows.append(
            QCrossoverRow(
                num_subwindows=num_subwindows,
                gbf_predicted=gbf_cost(
                    window_size, num_subwindows, bits_per_filter, num_hashes, word_bits
                ).total,
                gbf_measured=gbf_measured,
                tbf_predicted=tbf_cost(
                    window_size,
                    tbf.num_entries,
                    num_hashes,
                    cleanup_slack=num_subwindows * subwindow - 1,
                ).total,
                tbf_measured=tbf_measured,
            )
        )
    return result


def _measure_word_ops(detector, stream, warmup: int) -> float:
    for identifier in stream[:warmup]:
        detector.process(int(identifier))
    detector.counter.reset()
    for identifier in stream[warmup:]:
        detector.process(int(identifier))
    rates = detector.counter.per_element()
    return rates.total_word_ops


# ----------------------------------------------------------------------
# A3: counting-filter counter width
# ----------------------------------------------------------------------

@dataclass
class CBFWidthRow:
    counter_bits: int
    memory_bits: int
    saturation_events: int
    false_positive_rate: float
    false_negative_rate: float


@dataclass
class CBFWidthResult:
    window_size: int
    num_subwindows: int
    num_counters: int
    num_hashes: int
    rows: List[CBFWidthRow] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["counter_bits", "memory_bits", "saturations", "fp_rate", "fn_rate"],
            [
                [
                    row.counter_bits,
                    row.memory_bits,
                    row.saturation_events,
                    row.false_positive_rate,
                    row.false_negative_rate,
                ]
                for row in self.rows
            ],
            title=(
                f"Ablation A3 - Metwally CBF counter width "
                f"(N={self.window_size}, Q={self.num_subwindows}, "
                f"m={self.num_counters}, k={self.num_hashes})"
            ),
        )


def run_cbf_width_ablation(
    window_size: int = 1 << 12,
    num_subwindows: int = 8,
    num_counters: int = 1 << 14,
    counter_widths: Sequence[int] = (2, 4, 8, 16),
    num_hashes: int = 3,
    duplicate_rate: float = 0.3,
    seed: int = 0,
) -> CBFWidthResult:
    """Duplicate-heavy stream through the CBF baseline at several widths.

    With narrow counters the heavy repeats saturate popular slots:
    subtraction can no longer remove expired contributions (stuck-on
    FPs) or removes too much (FNs).  Ground truth comes from the exact
    jumping-window detector.
    """
    stream = duplicated_stream(
        window_size * 6,
        DuplicateSpec(rate=duplicate_rate, max_lag=window_size // 2),
        seed=seed,
    )
    result = CBFWidthResult(
        window_size=window_size,
        num_subwindows=num_subwindows,
        num_counters=num_counters,
        num_hashes=num_hashes,
    )
    for width in counter_widths:
        detector = MetwallyCBFDetector(
            window_size,
            num_subwindows,
            num_counters,
            num_hashes,
            counter_bits=width,
            seed=seed,
        )
        exact = ExactDetector.jumping(window_size, num_subwindows)
        matrix = ConfusionMatrix()
        for identifier in stream:
            identifier = int(identifier)
            matrix.update(detector.process(identifier), exact.process(identifier))
        result.rows.append(
            CBFWidthRow(
                counter_bits=width,
                memory_bits=detector.memory_bits,
                saturation_events=detector.saturation_events,
                false_positive_rate=matrix.false_positive_rate,
                false_negative_rate=matrix.false_negative_rate,
            )
        )
    return result


# ----------------------------------------------------------------------
# A5: landmark-window boundary misses
# ----------------------------------------------------------------------

@dataclass
class LandmarkMissRow:
    duplicate_lag: int
    landmark_miss_rate: float
    tbf_miss_rate: float


@dataclass
class LandmarkMissResult:
    window_size: int
    rows: List[LandmarkMissRow] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["lag", "landmark miss rate", "TBF(sliding) miss rate"],
            [
                [row.duplicate_lag, row.landmark_miss_rate, row.tbf_miss_rate]
                for row in self.rows
            ],
            title=(
                "Ablation A5 - duplicates straddling landmark epochs "
                f"(N={self.window_size})"
            ),
        )


def run_landmark_boundary_ablation(
    window_size: int = 1 << 12,
    lags: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
    pairs_per_lag: int = 400,
    seed: int = 0,
) -> LandmarkMissResult:
    """Quantify why landmark windows are not enough (§1.2 / §2.4).

    The Metwally et al. landmark scheme clears its filter every N
    arrivals, so a duplicate pair separated by ``lag < N`` is *missed*
    whenever an epoch boundary falls between the two clicks — with
    probability ``lag / N`` for a randomly placed pair.  A sliding
    window never misses them.  We inject duplicate pairs at controlled
    lags into distinct background traffic and measure each scheme's
    miss rate on the second element of every pair.
    """
    import numpy as np

    from ..baselines import LandmarkBloomDetector
    from ..core import TBFDetector
    from ..streams.generators import distinct_stream

    rng = np.random.default_rng(seed)
    result = LandmarkMissResult(window_size=window_size)
    for lag_fraction in lags:
        lag = max(1, round(lag_fraction * window_size))
        landmark = LandmarkBloomDetector(
            window_size, 1 << 18, 8, seed=seed
        )
        tbf = TBFDetector(window_size, 1 << 18, 8, seed=seed)
        background = iter(map(int, distinct_stream(
            pairs_per_lag * (lag + window_size), seed=seed + lag
        )))
        landmark_misses = 0
        tbf_misses = 0
        for pair in range(pairs_per_lag):
            # Random placement of the pair relative to epoch boundaries.
            prefix = int(rng.integers(0, window_size))
            for _ in range(prefix):
                filler = next(background)
                landmark.process(filler)
                tbf.process(filler)
            first = next(background)
            landmark.process(first)
            tbf.process(first)
            for _ in range(lag - 1):
                filler = next(background)
                landmark.process(filler)
                tbf.process(filler)
            if not landmark.process(first):
                landmark_misses += 1
            if not tbf.process(first):
                tbf_misses += 1
        result.rows.append(
            LandmarkMissRow(
                duplicate_lag=lag,
                landmark_miss_rate=landmark_misses / pairs_per_lag,
                tbf_miss_rate=tbf_misses / pairs_per_lag,
            )
        )
    return result
