"""Experiment configuration: the paper's constants and scaling rules.

The paper evaluates at ``N = 2^20`` with streams of ``20 * N`` elements
(§5) — about 21M elements per configuration, comfortable in C, slow in
pure Python.  Bloom-filter false-positive rates depend only on the
*ratios* ``k`` and ``n/m`` (see :mod:`repro.bloom.params`), so every
experiment here scales ``N`` and ``m`` down by a common factor while
keeping ``k``, ``Q``, the ``20N`` stream length, and the ``10N``
measurement window — preserving the statistics the figures plot.  The
scale factor defaults to 64 (``N = 2^14``) and can be overridden with
the ``REPRO_SCALE`` environment variable (set ``REPRO_SCALE=1`` to run
the paper's exact sizes, given patience).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ConfigurationError

#: §5 constants, verbatim from the paper.
PAPER_WINDOW_SIZE = 1 << 20
PAPER_FIG2A_SUBWINDOWS = 8
PAPER_FIG2A_BITS_PER_FILTER = 1_876_246
PAPER_FIG2B_ENTRIES = 15_112_980
PAPER_FIG1_SUBWINDOWS = 31
PAPER_FIG1_FILTER_BITS = 1 << 20
PAPER_STREAM_MULTIPLIER = 20  # total stream length = 20 * N
PAPER_MEASURE_MULTIPLIER = 10  # FPs counted over the last 10 * N

DEFAULT_SCALE = 64


def scale_factor(default: int = DEFAULT_SCALE) -> int:
    """The active scale-down factor (``REPRO_SCALE`` env override)."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"REPRO_SCALE must be an integer, got {raw!r}") from None
    if value < 1:
        raise ConfigurationError(f"REPRO_SCALE must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class FPExperimentConfig:
    """One false-positive measurement configuration (§5 protocol)."""

    window_size: int
    stream_length: int
    measure_from: int  # stream position where FP counting starts
    seed: int = 0

    @classmethod
    def scaled(cls, scale: int, seed: int = 0) -> "FPExperimentConfig":
        """The paper's protocol at ``N = 2^20 / scale``."""
        if scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {scale}")
        window = PAPER_WINDOW_SIZE // scale
        if window < 1:
            raise ConfigurationError(f"scale {scale} collapses the window to zero")
        length = PAPER_STREAM_MULTIPLIER * window
        measure_from = length - PAPER_MEASURE_MULTIPLIER * window
        return cls(
            window_size=window,
            stream_length=length,
            measure_from=measure_from,
            seed=seed,
        )


def scaled_fig2a_bits(scale: int) -> int:
    """Figure 2(a) lane size at the given scale (same m/N ratio)."""
    return max(1, round(PAPER_FIG2A_BITS_PER_FILTER / scale))


def scaled_fig2b_entries(scale: int) -> int:
    """Figure 2(b) entry count at the given scale (same m/N ratio)."""
    return max(1, round(PAPER_FIG2B_ENTRIES / scale))


def scaled_fig1_filter_bits(scale: int) -> int:
    """Figure 1 per-filter size at the given scale."""
    return max(1, PAPER_FIG1_FILTER_BITS // scale)
