"""Figure 2(b): TBF false-positive rate vs number of hash functions.

Paper setup (§5): sliding window ``N = 2^20``, ``m = 15,112,980``
timing entries; a stream of ``20N`` distinct identifiers; false
positives counted over the last ``10N`` clicks.  At ``k = 10`` (the
optimum for ``N`` elements in ``m`` entries) the paper reports an FP
rate of about ``0.001`` — and the classical-formula prediction at those
exact constants is 0.00098, which our theory curve reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.theory import tbf_fp
from ..core import TBFDetector
from ..metrics.reporting import render_series
from .config import FPExperimentConfig, scale_factor, scaled_fig2b_entries
from .runner import run_distinct_stream_fp

DEFAULT_K_VALUES = tuple(range(2, 15, 2))


@dataclass
class Figure2bResult:
    """All series of the reproduced figure."""

    window_size: int
    num_entries: int
    k_values: List[int] = field(default_factory=list)
    measured: List[float] = field(default_factory=list)
    theory: List[float] = field(default_factory=list)

    def render(self) -> str:
        title = (
            f"Figure 2(b) - TBF FP rate over sliding windows "
            f"(N={self.window_size}, m={self.num_entries})"
        )
        return render_series(
            "k",
            self.k_values,
            [("measured", self.measured), ("theory", self.theory)],
            title=title,
        )


def run_figure2b(
    scale: Optional[int] = None,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    seed: int = 0,
) -> Figure2bResult:
    """Reproduce Figure 2(b) at ``N = 2^20 / scale`` (same m/N and k)."""
    scale = scale or scale_factor()
    config = FPExperimentConfig.scaled(scale, seed=seed)
    num_entries = scaled_fig2b_entries(scale)
    result = Figure2bResult(
        window_size=config.window_size,
        num_entries=num_entries,
    )
    for k in k_values:
        detector = TBFDetector(
            window_size=config.window_size,
            num_entries=num_entries,
            num_hashes=k,
            seed=seed + k,
        )
        measurement = run_distinct_stream_fp(detector, config)
        result.k_values.append(k)
        result.measured.append(measurement.rate)
        result.theory.append(tbf_fp(config.window_size, num_entries, k))
    return result
