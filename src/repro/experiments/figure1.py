"""Figure 1: previous algorithm (Metwally CBF) vs GBF as N grows.

Paper setup (§3.3): ``Q = 31`` sub-windows, filters of ``m = 2^20``
(bits for GBF lanes, counters for the baseline's main filter), window
size ``N`` swept from ``2^15`` to ``2^20``.  Headline: at ``N = 2^20``
the previous algorithm's FP rate is ~0.62 while GBF's is ~0.073 — the
main filter behaves as if all ``N`` elements shared one filter, while
each GBF lane holds only ``N/Q``.

The paper does not state the ``k`` used; ``k = 2`` reproduces the
quoted magnitudes most closely (theory 0.75 vs 0.12 at ``N = 2^20``;
see EXPERIMENTS.md for the sweep over k).  Theoretical curves are
computed at the paper's full scale; measured points run at a scaled
size with all ratios preserved.  Measured runs use ``Q = 32`` (our GBF
enforces ``Q | N``; the paper's 31 was chosen to pack ``Q+1 = 32``
lanes into a 32-bit word, which affects packing, not error rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.theory import gbf_window_fp, metwally_main_fp
from ..baselines import MetwallyCBFDetector
from ..core import GBFDetector
from ..metrics.reporting import render_series
from .config import (
    PAPER_FIG1_FILTER_BITS,
    PAPER_FIG1_SUBWINDOWS,
    PAPER_STREAM_MULTIPLIER,
    PAPER_MEASURE_MULTIPLIER,
    scale_factor,
)
from .runner import FPExperimentConfig, run_distinct_stream_fp

#: log2(N) sweep of the paper's x axis.
PAPER_LOG_N_VALUES = tuple(range(15, 21))
DEFAULT_NUM_HASHES = 2
#: Q for measured runs (next power of two above the paper's 31).
MEASURED_SUBWINDOWS = 32


@dataclass
class Figure1Result:
    """Theory at paper scale plus measurements at the scaled sizes."""

    num_hashes: int
    log_n_values: List[int] = field(default_factory=list)
    theory_previous: List[float] = field(default_factory=list)
    theory_gbf: List[float] = field(default_factory=list)
    measured_previous: List[float] = field(default_factory=list)
    measured_gbf: List[float] = field(default_factory=list)

    def render(self) -> str:
        title = (
            f"Figure 1 - FP rate vs window size "
            f"(Q={PAPER_FIG1_SUBWINDOWS}, m=2^20, k={self.num_hashes})"
        )
        return render_series(
            "log2(N)",
            self.log_n_values,
            [
                ("previous(theory)", self.theory_previous),
                ("GBF(theory)", self.theory_gbf),
                ("previous(measured)", self.measured_previous),
                ("GBF(measured)", self.measured_gbf),
            ],
            title=title,
        )


def run_figure1(
    scale: Optional[int] = None,
    log_n_values: Sequence[int] = PAPER_LOG_N_VALUES,
    num_hashes: int = DEFAULT_NUM_HASHES,
    seed: int = 0,
    measure: bool = True,
) -> Figure1Result:
    """Reproduce Figure 1.

    Theory uses the paper's exact constants; measurements divide every
    size by ``scale``.  Set ``measure=False`` for the (instant)
    theory-only variant.
    """
    scale = scale or scale_factor()
    result = Figure1Result(num_hashes=num_hashes)
    for log_n in log_n_values:
        window = 1 << log_n
        result.log_n_values.append(log_n)
        result.theory_previous.append(
            metwally_main_fp(window, PAPER_FIG1_FILTER_BITS, num_hashes)
        )
        result.theory_gbf.append(
            gbf_window_fp(
                window, PAPER_FIG1_SUBWINDOWS, PAPER_FIG1_FILTER_BITS, num_hashes
            )
        )
        if not measure:
            result.measured_previous.append(float("nan"))
            result.measured_gbf.append(float("nan"))
            continue
        scaled_window = max(MEASURED_SUBWINDOWS, window // scale)
        # Keep N divisible by Q.
        scaled_window -= scaled_window % MEASURED_SUBWINDOWS
        scaled_bits = max(64, PAPER_FIG1_FILTER_BITS // scale)
        config = FPExperimentConfig(
            window_size=scaled_window,
            stream_length=PAPER_STREAM_MULTIPLIER * scaled_window,
            measure_from=(PAPER_STREAM_MULTIPLIER - PAPER_MEASURE_MULTIPLIER)
            * scaled_window,
            seed=seed + log_n,
        )
        gbf = GBFDetector(
            window_size=scaled_window,
            num_subwindows=MEASURED_SUBWINDOWS,
            bits_per_filter=scaled_bits,
            num_hashes=num_hashes,
            seed=seed + log_n,
        )
        result.measured_gbf.append(run_distinct_stream_fp(gbf, config).rate)
        previous = MetwallyCBFDetector(
            window_size=scaled_window,
            num_subwindows=MEASURED_SUBWINDOWS,
            num_counters=scaled_bits,
            num_hashes=num_hashes,
            counter_bits=16,  # wide enough to avoid saturation artifacts
            seed=seed + log_n,
        )
        result.measured_previous.append(run_distinct_stream_fp(previous, config).rate)
    return result
